module Engine = Tpbs_sim.Engine
module Net = Tpbs_sim.Net
module Stable = Tpbs_sim.Stable
module Membership = Tpbs_group.Membership
module Vclock = Tpbs_group.Vclock
module Best_effort = Tpbs_group.Best_effort
module Rbcast = Tpbs_group.Rbcast
module Fifo = Tpbs_group.Fifo
module Causal = Tpbs_group.Causal
module Total = Tpbs_group.Total
module Certified = Tpbs_group.Certified
module Gossip = Tpbs_group.Gossip

(* A little harness: n nodes, per-node delivery logs. *)
type 'p world = {
  engine : Engine.t;
  net : Net.t;
  group : Membership.t;
  nodes : Net.node_id array;
  logs : (Net.node_id * string) list ref array;  (* (origin, payload) *)
  protos : 'p array;
}

let make_world ?(n = 5) ?(config = Net.default_config) ?(seed = 42) attach =
  let engine = Engine.create ~seed () in
  let net = Net.create ~config engine in
  let nodes = Array.init n (fun _ -> Net.add_node net) in
  let group = Membership.create net (Array.to_list nodes) in
  let logs = Array.init n (fun _ -> ref []) in
  let protos =
    Array.mapi
      (fun i me ->
        attach group ~me ~deliver:(fun ~origin payload ->
            logs.(i) := (origin, payload) :: !(logs.(i))))
      nodes
  in
  { engine; net; group; nodes; logs; protos }

let log w i = List.rev !(w.logs.(i))
let payloads w i = List.map snd (log w i)

(* --- vector clocks --------------------------------------------------- *)

let test_vclock_ops () =
  let a = Vclock.create 3 and b = Vclock.create 3 in
  Vclock.tick a 0;
  Vclock.tick a 0;
  Vclock.tick b 1;
  Alcotest.(check bool) "concurrent" true (Vclock.relate a b = Vclock.Concurrent);
  let c = Vclock.copy a in
  Vclock.merge c b;
  Alcotest.(check bool) "a before merge" true (Vclock.relate a c = Vclock.Before);
  Alcotest.(check bool) "b before merge" true (Vclock.relate b c = Vclock.Before);
  Alcotest.(check bool) "equal to self" true (Vclock.relate c c = Vclock.Equal);
  Alcotest.(check int) "entries" 2 (Vclock.get c 0)

let test_vclock_deliverable () =
  let local = Vclock.create 3 in
  let m = Vclock.create 3 in
  Vclock.tick m 1;
  Alcotest.(check bool) "first message from 1" true
    (Vclock.deliverable m ~sender:1 ~local);
  Vclock.tick m 1;
  Alcotest.(check bool) "gap not deliverable" false
    (Vclock.deliverable m ~sender:1 ~local);
  let dep = Vclock.create 3 in
  Vclock.tick dep 1;
  Vclock.tick dep 0;
  Alcotest.(check bool) "unseen dependency blocks" false
    (Vclock.deliverable dep ~sender:0 ~local)

let test_vclock_wire () =
  let a = Vclock.create 4 in
  Vclock.tick a 2;
  Vclock.tick a 0;
  match Vclock.of_value (Vclock.to_value a) with
  | Some b -> Alcotest.(check bool) "roundtrip" true (Vclock.equal a b)
  | None -> Alcotest.fail "roundtrip failed"

(* --- membership ------------------------------------------------------- *)

let test_membership () =
  let e = Engine.create () in
  let net = Net.create e in
  let ids = List.init 4 (fun _ -> Net.add_node net) in
  let g = Membership.create net ids in
  Alcotest.(check int) "size" 4 (Membership.size g);
  Alcotest.(check int) "rank of first" 0 (Membership.rank g (List.nth ids 0));
  Alcotest.(check bool) "member" true (Membership.is_member g (List.nth ids 2));
  Alcotest.(check int) "others excludes self" 3
    (List.length (Membership.others g (List.nth ids 1)));
  match Membership.create net [ List.nth ids 0; List.nth ids 0 ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate members accepted"

(* --- best effort ------------------------------------------------------ *)

let test_best_effort_all_deliver () =
  let w =
    make_world ~n:5 (fun g ~me ~deliver ->
        Best_effort.attach g ~me ~name:"t" ~deliver)
  in
  Best_effort.bcast w.protos.(0) "hello";
  Engine.run w.engine;
  Array.iteri
    (fun i _ ->
      Alcotest.(check (list string))
        (Printf.sprintf "node %d" i)
        [ "hello" ] (payloads w i))
    w.nodes

let test_best_effort_lossy () =
  let w =
    make_world ~n:10
      ~config:{ Net.default_config with loss = 0.4 }
      (fun g ~me ~deliver -> Best_effort.attach g ~me ~name:"t" ~deliver)
  in
  for i = 1 to 20 do
    Best_effort.bcast w.protos.(0) (string_of_int i)
  done;
  Engine.run w.engine;
  let total = Array.fold_left (fun acc l -> acc + List.length !l) 0 w.logs in
  (* 200 potential non-self deliveries (9 receivers x 20) + 20 self;
     with 40% loss roughly 128 survive on receivers. Self-sends are
     also subject to loss in this model? They go through the same
     path; allow a broad band. *)
  Alcotest.(check bool)
    (Printf.sprintf "some but not all delivered (%d)" total)
    true
    (total > 60 && total < 195)

(* --- reliable broadcast ----------------------------------------------- *)

let test_rbcast_all_deliver_once () =
  let w =
    make_world ~n:6 (fun g ~me ~deliver ->
        Rbcast.attach g ~me ~name:"t" ~deliver)
  in
  Rbcast.bcast w.protos.(2) "m1";
  Rbcast.bcast w.protos.(3) "m2";
  Engine.run w.engine;
  Array.iteri
    (fun i _ ->
      let got = List.sort String.compare (payloads w i) in
      Alcotest.(check (list string))
        (Printf.sprintf "node %d exactly once" i)
        [ "m1"; "m2" ] got)
    w.nodes;
  Alcotest.(check bool) "flooding suppressed duplicates" true
    (Rbcast.duplicates_suppressed w.protos.(0) > 0)

let test_rbcast_masks_loss () =
  (* With 30% iid loss, flooding n=8 gives each node ~7 chances. *)
  let w =
    make_world ~n:8 ~seed:7
      ~config:{ Net.default_config with loss = 0.3 }
      (fun g ~me ~deliver -> Rbcast.attach g ~me ~name:"t" ~deliver)
  in
  for i = 1 to 10 do
    Rbcast.bcast w.protos.(i mod 8) (string_of_int i)
  done;
  Engine.run w.engine;
  Array.iteri
    (fun i _ ->
      Alcotest.(check int)
        (Printf.sprintf "node %d got all 10" i)
        10
        (List.length (payloads w i)))
    w.nodes

let test_rbcast_survives_publisher_crash_after_first_send () =
  let w =
    make_world ~n:5 (fun g ~me ~deliver ->
        Rbcast.attach g ~me ~name:"t" ~deliver)
  in
  Rbcast.bcast w.protos.(0) "will-survive";
  (* Publisher dies immediately after the sends are queued. *)
  Net.crash w.net w.nodes.(0);
  Engine.run w.engine;
  for i = 1 to 4 do
    Alcotest.(check (list string))
      (Printf.sprintf "node %d" i)
      [ "will-survive" ] (payloads w i)
  done

(* --- fifo -------------------------------------------------------------- *)

let test_fifo_publisher_order () =
  let w =
    make_world ~n:4
      ~config:{ Net.default_config with jitter = 900 }
      (fun g ~me ~deliver -> Fifo.attach g ~me ~name:"t" ~deliver)
  in
  for i = 1 to 20 do
    Fifo.bcast w.protos.(0) (string_of_int i)
  done;
  Engine.run w.engine;
  let expect = List.init 20 (fun i -> string_of_int (i + 1)) in
  Array.iteri
    (fun i _ ->
      Alcotest.(check (list string))
        (Printf.sprintf "node %d in publication order" i)
        expect (payloads w i))
    w.nodes

let test_fifo_interleaved_publishers () =
  let w =
    make_world ~n:4
      ~config:{ Net.default_config with jitter = 900 }
      (fun g ~me ~deliver -> Fifo.attach g ~me ~name:"t" ~deliver)
  in
  for i = 1 to 10 do
    Fifo.bcast w.protos.(0) ("a" ^ string_of_int i);
    Fifo.bcast w.protos.(1) ("b" ^ string_of_int i)
  done;
  Engine.run w.engine;
  (* Per-origin subsequences must be in order on every node. *)
  Array.iteri
    (fun i _ ->
      let deliveries = log w i in
      let from_a =
        List.filter_map
          (fun (o, p) -> if o = w.nodes.(0) then Some p else None)
          deliveries
      and from_b =
        List.filter_map
          (fun (o, p) -> if o = w.nodes.(1) then Some p else None)
          deliveries
      in
      Alcotest.(check (list string))
        (Printf.sprintf "node %d: a-stream ordered" i)
        (List.init 10 (fun k -> "a" ^ string_of_int (k + 1)))
        from_a;
      Alcotest.(check (list string))
        (Printf.sprintf "node %d: b-stream ordered" i)
        (List.init 10 (fun k -> "b" ^ string_of_int (k + 1)))
        from_b)
    w.nodes

(* --- causal ------------------------------------------------------------- *)

let test_causal_happens_before () =
  (* Node 1 publishes "reply" only after delivering "question". No
     node may deliver the reply first, whatever the jitter. *)
  let replied = ref false in
  let engine = Engine.create ~seed:5 () in
  let net = Net.create ~config:{ Net.default_config with jitter = 950 } engine in
  let nodes = Array.init 5 (fun _ -> Net.add_node net) in
  let group = Membership.create net (Array.to_list nodes) in
  let logs = Array.init 5 (fun _ -> ref []) in
  let protos = Array.make 5 None in
  Array.iteri
    (fun i me ->
      let deliver ~origin:_ payload =
        logs.(i) := payload :: !(logs.(i));
        if i = 1 && payload = "question" && not !replied then begin
          replied := true;
          match protos.(1) with
          | Some p -> Causal.bcast p "reply"
          | None -> ()
        end
      in
      protos.(i) <- Some (Causal.attach group ~me ~name:"t" ~deliver))
    nodes;
  (match protos.(0) with
  | Some p -> Causal.bcast p "question"
  | None -> ());
  Engine.run engine;
  Array.iteri
    (fun i l ->
      match List.rev !l with
      | [ "question"; "reply" ] -> ()
      | other ->
          Alcotest.failf "node %d delivered %a" i
            Fmt.(Dump.list string)
            other)
    logs

let test_causal_implies_fifo () =
  let w =
    make_world ~n:4
      ~config:{ Net.default_config with jitter = 900 }
      (fun g ~me ~deliver -> Causal.attach g ~me ~name:"t" ~deliver)
  in
  for i = 1 to 15 do
    Causal.bcast w.protos.(2) (string_of_int i)
  done;
  Engine.run w.engine;
  let expect = List.init 15 (fun i -> string_of_int (i + 1)) in
  Array.iteri
    (fun i _ ->
      Alcotest.(check (list string))
        (Printf.sprintf "node %d fifo via causal" i)
        expect (payloads w i))
    w.nodes

(* --- total -------------------------------------------------------------- *)

let test_total_agreement () =
  let w =
    make_world ~n:5
      ~config:{ Net.default_config with jitter = 900 }
      (fun g ~me ~deliver -> Total.attach g ~me ~name:"t" ~deliver)
  in
  (* Concurrent publishers racing. *)
  for i = 1 to 10 do
    Total.bcast w.protos.(i mod 5) (Printf.sprintf "m%d" i)
  done;
  Engine.run w.engine;
  let reference = payloads w 0 in
  Alcotest.(check int) "all messages" 10 (List.length reference);
  Array.iteri
    (fun i _ ->
      Alcotest.(check (list string))
        (Printf.sprintf "node %d agrees with node 0" i)
        reference (payloads w i))
    w.nodes

let test_total_causal_agreement_and_causality () =
  let engine = Engine.create ~seed:3 () in
  let net = Net.create ~config:{ Net.default_config with jitter = 900 } engine in
  let nodes = Array.init 4 (fun _ -> Net.add_node net) in
  let group = Membership.create net (Array.to_list nodes) in
  let logs = Array.init 4 (fun _ -> ref []) in
  let protos = Array.make 4 None in
  let replied = ref false in
  Array.iteri
    (fun i me ->
      let deliver ~origin:_ payload =
        logs.(i) := payload :: !(logs.(i));
        if i = 2 && payload = "cause" && not !replied then begin
          replied := true;
          match protos.(2) with
          | Some p -> Total.bcast p "effect"
          | None -> ()
        end
      in
      protos.(i) <- Some (Total.attach ~causal:true group ~me ~name:"t" ~deliver))
    nodes;
  (match protos.(1) with Some p -> Total.bcast p "cause" | None -> ());
  Engine.run engine;
  let reference = List.rev !(logs.(0)) in
  Alcotest.(check (list string)) "causal total order" [ "cause"; "effect" ]
    reference;
  Array.iteri
    (fun i l ->
      Alcotest.(check (list string))
        (Printf.sprintf "node %d agrees" i)
        reference (List.rev !l))
    logs

(* --- certified ----------------------------------------------------------- *)

let test_certified_basic () =
  let stores = Array.init 4 (fun _ -> Stable.create ()) in
  let idx = ref 0 in
  let w =
    make_world ~n:4 (fun g ~me ~deliver ->
        let storage = stores.(!idx) in
        incr idx;
        Certified.attach g ~me ~name:"t" ~storage ~deliver ())
  in
  Certified.bcast w.protos.(0) "c1";
  Certified.bcast w.protos.(0) "c2";
  Engine.run w.engine;
  Array.iteri
    (fun i _ ->
      Alcotest.(check (list string))
        (Printf.sprintf "node %d" i)
        [ "c1"; "c2" ] (payloads w i))
    w.nodes;
  Alcotest.(check int) "all acked" 0 (Certified.unacked w.protos.(0));
  (* Fully-acked entries are trimmed: every ack certifies the
     subscriber persisted its frontier first, so nothing can ask for
     them again. *)
  Alcotest.(check int) "log trimmed after full ack" 0
    (Certified.log_size w.protos.(0));
  Alcotest.(check int) "low watermark advanced" 2
    (Certified.low_watermark w.protos.(0))

let test_certified_retention_and_replay () =
  let stores = Array.init 3 (fun _ -> Stable.create ()) in
  let idx = ref 0 in
  let w =
    make_world ~n:3 (fun g ~me ~deliver ->
        let storage = stores.(!idx) in
        incr idx;
        Certified.attach g ~me ~name:"t" ~storage ~retain_acked:true ~deliver ())
  in
  Certified.bcast w.protos.(0) "h1";
  Certified.bcast w.protos.(0) "h2";
  Certified.bcast w.protos.(1) "h3";
  Engine.run w.engine;
  Alcotest.(check int) "retention keeps acked history" 2
    (Certified.log_size w.protos.(0));
  Alcotest.(check int) "watermark still advances" 2
    (Certified.low_watermark w.protos.(0));
  (* A replay subscription on node 2 pulls the full history back. *)
  let got = ref [] and done_ = ref false in
  Certified.replay w.protos.(2) ~from:0
    ~on_complete:(fun () -> done_ := true)
    ~sink:(fun ~origin ~seq payload -> got := (origin, seq, payload) :: !got)
    ();
  Engine.run w.engine;
  Alcotest.(check bool) "replay completed" true !done_;
  let by_origin o =
    List.rev !got
    |> List.filter_map (fun (origin, seq, p) ->
           if origin = w.nodes.(o) then Some (seq, p) else None)
  in
  Alcotest.(check (list (pair int string)))
    "origin 0 history in order"
    [ (0, "h1"); (1, "h2") ]
    (by_origin 0);
  Alcotest.(check (list (pair int string)))
    "origin 1 history in order" [ (0, "h3") ] (by_origin 1);
  Alcotest.(check int) "replayed counted" 3 (Certified.replayed w.protos.(2))

let test_certified_malformed_state () =
  (* Corrupt durable values must read as absent — counted, not
     raised — on both the attach and the resume path. *)
  let stores = Array.init 2 (fun _ -> Stable.create ()) in
  Stable.put stores.(0) "cert:t:next" "garbage";
  Stable.put stores.(0) "cert:t:lwm" "-3";
  (* a corrupt subscriber frontier, read lazily on first data *)
  Stable.put stores.(1) "cert:t:exp:0" "NaN";
  let idx = ref 0 in
  let w =
    make_world ~n:2 (fun g ~me ~deliver ->
        let storage = stores.(!idx) in
        incr idx;
        Certified.attach g ~me ~name:"t" ~storage ~deliver ())
  in
  Alcotest.(check int) "corrupt next + lwm counted" 2
    (Certified.state_errors w.protos.(0));
  (* the protocol still works from scratch *)
  Certified.bcast w.protos.(0) "m";
  Engine.run w.engine;
  Alcotest.(check (list string)) "delivery unaffected" [ "m" ] (payloads w 1);
  Alcotest.(check int) "corrupt frontier counted on restore" 1
    (Certified.state_errors w.protos.(1));
  (* corrupt publisher state hit again on the resume path *)
  Stable.put stores.(1) "cert:t:next" "1e9";
  Certified.resume w.protos.(1);
  Engine.run w.engine;
  Alcotest.(check bool) "resume survived corrupt state" true
    (Certified.state_errors w.protos.(1) >= 2)

let test_certified_timer_earliest_deadline () =
  (* One member stays crashed: after backoff settles at the cap, the
     retransmission timer must wake at the next deadline, not spin
     every retry_period. *)
  let stores = Array.init 3 (fun _ -> Stable.create ()) in
  let idx = ref 0 in
  let w =
    make_world ~n:3 (fun g ~me ~deliver ->
        let storage = stores.(!idx) in
        incr idx;
        Certified.attach g ~me ~name:"t" ~storage ~retry_period:3000
          ~max_backoff:8 ~deliver ())
  in
  Net.crash w.net w.nodes.(2);
  Certified.bcast w.protos.(0) "m";
  Engine.run ~until:500_000 w.engine;
  Alcotest.(check bool) "still unacked" true (Certified.unacked w.protos.(0) > 0);
  (* fixed-period polling would fire ~166 times in this window; the
     earliest-deadline timer needs the backoff ramp plus one firing
     per capped period (24k ticks), ~25 *)
  let wakeups = Certified.timer_wakeups w.protos.(0) in
  Alcotest.(check bool)
    (Printf.sprintf "timer wakeups bounded (%d)" wakeups)
    true (wakeups <= 40)

let test_certified_retransmits_through_loss () =
  let stores = Array.init 4 (fun _ -> Stable.create ()) in
  let idx = ref 0 in
  let w =
    make_world ~n:4 ~seed:13
      ~config:{ Net.default_config with loss = 0.4 }
      (fun g ~me ~deliver ->
        let storage = stores.(!idx) in
        incr idx;
        Certified.attach g ~me ~name:"t" ~storage ~retry_period:3000 ~deliver ())
  in
  for i = 1 to 5 do
    Certified.bcast w.protos.(0) (string_of_int i)
  done;
  Engine.run ~until:2_000_000 w.engine;
  let expect = List.init 5 (fun i -> string_of_int (i + 1)) in
  Array.iteri
    (fun i _ ->
      Alcotest.(check (list string))
        (Printf.sprintf "node %d eventually got all" i)
        expect (payloads w i))
    w.nodes

let test_certified_subscriber_crash_recovery () =
  (* The defining scenario (§3.1.2): a subscriber crashes, obvents are
     published while it is down, it recovers and still delivers them. *)
  let stores = Array.init 3 (fun _ -> Stable.create ()) in
  let idx = ref 0 in
  let w =
    make_world ~n:3 (fun g ~me ~deliver ->
        let storage = stores.(!idx) in
        incr idx;
        Certified.attach g ~me ~name:"t" ~storage ~deliver ())
  in
  Certified.bcast w.protos.(0) "before";
  Engine.run w.engine;
  Net.crash w.net w.nodes.(2);
  Certified.bcast w.protos.(0) "during1";
  Certified.bcast w.protos.(0) "during2";
  Engine.run ~until:(Engine.now w.engine + 30_000) w.engine;
  Net.recover w.net w.nodes.(2);
  Certified.resume w.protos.(2);
  Engine.run ~until:(Engine.now w.engine + 200_000) w.engine;
  Alcotest.(check (list string)) "recovered subscriber delivered everything"
    [ "before"; "during1"; "during2" ]
    (payloads w 2);
  Alcotest.(check int) "publisher satisfied" 0 (Certified.unacked w.protos.(0))

let test_certified_publisher_crash_recovery () =
  let stores = Array.init 3 (fun _ -> Stable.create ()) in
  let idx = ref 0 in
  let w =
    make_world ~n:3 ~seed:21
      ~config:{ Net.default_config with loss = 0.95 }
      (fun g ~me ~deliver ->
        let storage = stores.(!idx) in
        incr idx;
        Certified.attach g ~me ~name:"t" ~storage ~retry_period:2000 ~deliver ())
  in
  (* Publish into a near-black-hole network, then crash: the durable
     log must let the recovered publisher finish the job. *)
  Certified.bcast w.protos.(0) "precious";
  Net.crash w.net w.nodes.(0);
  Engine.run ~until:(Engine.now w.engine + 10_000) w.engine;
  (* Heal the network and bring the publisher back. *)
  let w_net = w.net in
  ignore w_net;
  Net.recover w.net w.nodes.(0);
  (* Loss stays at 95%, but retransmission is persistent. *)
  Certified.resume w.protos.(0);
  Engine.run ~until:(Engine.now w.engine + 3_000_000) w.engine;
  for i = 1 to 2 do
    Alcotest.(check (list string))
      (Printf.sprintf "node %d" i)
      [ "precious" ] (payloads w i)
  done

(* --- gossip ---------------------------------------------------------------- *)

let gossip_world ?(pull = true) ~n ~fanout ~seed ~loss () =
  let engine = Engine.create ~seed () in
  let net = Net.create ~config:{ Net.default_config with loss } engine in
  let nodes = Array.init n (fun _ -> Net.add_node net) in
  let group = Membership.create net (Array.to_list nodes) in
  let counts = Array.make n 0 in
  let rng = Tpbs_sim.Rng.create (seed + 1) in
  let protos =
    Array.mapi
      (fun i me ->
        (* Seed views: a handful of random contacts. *)
        let seed_view =
          List.map
            (fun k -> nodes.(k))
            (Tpbs_sim.Rng.sample_without_replacement rng 4 n)
        in
        Gossip.attach
          ~config:{ Gossip.default_config with fanout; pull }
          group ~me ~name:"t" ~seed_view
          ~deliver:(fun ~origin:_ _ -> counts.(i) <- counts.(i) + 1))
      nodes
  in
  engine, protos, counts

let test_gossip_high_fanout_reaches_almost_all () =
  let engine, protos, counts = gossip_world ~n:60 ~fanout:5 ~seed:17 ~loss:0.05 () in
  for i = 1 to 5 do
    Gossip.bcast protos.(i) (Printf.sprintf "e%d" i)
  done;
  Engine.run ~until:200_000 engine;
  Array.iter (fun p -> Gossip.stop p) protos;
  Engine.run engine;
  let total = Array.fold_left ( + ) 0 counts in
  let ratio = float_of_int total /. float_of_int (60 * 5) in
  Alcotest.(check bool)
    (Printf.sprintf "delivery ratio %.2f >= 0.95" ratio)
    true (ratio >= 0.95)

let test_gossip_fanout_matters () =
  let ratio_for fanout =
    let engine, protos, counts =
      gossip_world ~n:80 ~fanout ~seed:29 ~loss:0.3 ()
    in
    for i = 1 to 5 do
      Gossip.bcast protos.(i) (Printf.sprintf "e%d" i)
    done;
    Engine.run ~until:60_000 engine;
    Array.iter Gossip.stop protos;
    Engine.run engine;
    float_of_int (Array.fold_left ( + ) 0 counts) /. float_of_int (80 * 5)
  in
  let low = ratio_for 1 and high = ratio_for 6 in
  (* The pull mechanism lets even fanout 1 catch up eventually, so the
     margin at a fixed horizon is modest — but must be positive. *)
  Alcotest.(check bool)
    (Printf.sprintf "fanout 6 (%.2f) beats fanout 1 (%.2f)" high low)
    true
    (high > low +. 0.03)

let test_gossip_pull_improves_delivery () =
  (* The lpbcast id-digest/retrieve mechanism recovers pushes lost to
     the network; disabling it must not improve delivery. *)
  let ratio ~pull =
    let engine, protos, counts =
      gossip_world ~pull ~n:60 ~fanout:2 ~seed:23 ~loss:0.35 ()
    in
    for i = 1 to 5 do
      Gossip.bcast protos.(i) (Printf.sprintf "e%d" i)
    done;
    Engine.run ~until:100_000 engine;
    Array.iter Gossip.stop protos;
    Engine.run engine;
    float_of_int (Array.fold_left ( + ) 0 counts) /. float_of_int (60 * 5)
  in
  let with_pull = ratio ~pull:true and without = ratio ~pull:false in
  Alcotest.(check bool)
    (Printf.sprintf "pull (%.2f) >= push-only (%.2f)" with_pull without)
    true
    (with_pull >= without)

let test_gossip_bounded_state () =
  let engine, protos, _ = gossip_world ~n:30 ~fanout:3 ~seed:31 ~loss:0. () in
  for i = 0 to 29 do
    Gossip.bcast protos.(i) (Printf.sprintf "e%d" i)
  done;
  Engine.run ~until:100_000 engine;
  Array.iter
    (fun p ->
      Alcotest.(check bool) "view bounded" true
        (List.length (Gossip.view p) <= Gossip.default_config.Gossip.view_size))
    protos;
  Array.iter Gossip.stop protos;
  Engine.run engine

let test_gossip_seen_bounded_long_run () =
  (* The duplicate-suppression table must not grow with run length:
     ids retire 12x rounds_ttl rounds after first sight. A long stream
     keeps only the recent horizon in memory — and retiring must not
     re-admit an id (counts stay <= one delivery per event). *)
  let n = 20 and events = 300 in
  let engine, protos, counts =
    gossip_world ~n ~fanout:3 ~seed:1023 ~loss:0.2 ()
  in
  for i = 0 to events - 1 do
    Engine.schedule engine ~delay:(i * 2000) (fun () ->
        Gossip.bcast protos.(i mod n) (Printf.sprintf "e%d" i))
  done;
  Engine.run ~until:800_000 engine;
  Array.iter Gossip.stop protos;
  Engine.run engine;
  (* Horizon: 12 * ttl 5 = 60 rounds of 2000 ticks = one event per
     round here, so ~60 live ids + slack; 300 would mean unbounded. *)
  Array.iter
    (fun p ->
      let size = Gossip.seen_size p in
      Alcotest.(check bool)
        (Printf.sprintf "seen table bounded (%d <= 150)" size)
        true (size <= 150))
    protos;
  Array.iteri
    (fun i c ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d: no duplicate deliveries (%d <= %d)" i c
           events)
        true (c <= events))
    counts;
  let ratio =
    float_of_int (Array.fold_left ( + ) 0 counts)
    /. float_of_int (n * events)
  in
  Alcotest.(check bool)
    (Printf.sprintf "delivery ratio %.2f >= 0.85" ratio)
    true (ratio >= 0.85)

(* --- property-style protocol tests ------------------------------------ *)

let prop_total_prefix_agreement () =
  (* Under loss and jitter, all nodes that deliver agree on a single
     total order: each node's delivery sequence is a prefix-closed
     subsequence of the longest one, in identical order. *)
  List.iter
    (fun seed ->
      let w =
        make_world ~n:6 ~seed
          ~config:{ latency = 800; jitter = 700; loss = 0.1 }
          (fun g ~me ~deliver -> Total.attach g ~me ~name:"pt" ~deliver)
      in
      for i = 1 to 25 do
        Total.bcast w.protos.(i mod 6) (Printf.sprintf "m%d" i)
      done;
      Engine.run ~until:5_000_000 w.engine;
      let sequences = Array.to_list (Array.mapi (fun i _ -> payloads w i) w.nodes) in
      let longest =
        List.fold_left
          (fun acc s -> if List.length s > List.length acc then s else acc)
          [] sequences
      in
      List.iteri
        (fun i s ->
          let rec is_prefix a b =
            match a, b with
            | [], _ -> true
            | x :: xs, y :: ys when x = y -> is_prefix xs ys
            | _ -> false
          in
          if not (is_prefix s longest) then
            Alcotest.failf "seed %d node %d: order disagrees" seed i)
        sequences)
    [ 1; 2; 3; 4; 5 ]

let prop_causal_chain () =
  (* A three-link causal chain across different nodes: every node must
     deliver links in chain order, for several seeds. *)
  List.iter
    (fun seed ->
      let engine = Engine.create ~seed () in
      let net =
        Net.create ~config:{ Net.default_config with jitter = 950 } engine
      in
      let nodes = Array.init 5 (fun _ -> Net.add_node net) in
      let group = Membership.create net (Array.to_list nodes) in
      let logs = Array.init 5 (fun _ -> ref []) in
      let protos = Array.make 5 None in
      Array.iteri
        (fun i me ->
          let deliver ~origin:_ payload =
            logs.(i) := payload :: !(logs.(i));
            (match i, payload with
            | 1, "link0" -> (
                match protos.(1) with
                | Some p -> Causal.bcast p "link1"
                | None -> ())
            | 2, "link1" -> (
                match protos.(2) with
                | Some p -> Causal.bcast p "link2"
                | None -> ())
            | _ -> ())
          in
          protos.(i) <- Some (Causal.attach group ~me ~name:"pc" ~deliver))
        nodes;
      (match protos.(0) with Some p -> Causal.bcast p "link0" | None -> ());
      Engine.run engine;
      Array.iteri
        (fun i l ->
          let seq = List.rev !l in
          let pos x =
            let rec go k = function
              | [] -> -1
              | y :: _ when y = x -> k
              | _ :: rest -> go (k + 1) rest
            in
            go 0 seq
          in
          if not (pos "link0" < pos "link1" && pos "link1" < pos "link2") then
            Alcotest.failf "seed %d node %d: causal chain broken (%s)" seed i
              (String.concat "," seq))
        logs)
    [ 11; 12; 13; 14 ]

let prop_certified_random_crashes () =
  (* Failure injection: random subscriber crash/recovery windows while
     a publisher streams certified messages; after recovery + resume,
     everyone has delivered everything, in per-publisher order. *)
  List.iter
    (fun seed ->
      let stores = Array.init 4 (fun _ -> Stable.create ()) in
      let idx = ref 0 in
      let w =
        make_world ~n:4 ~seed
          ~config:{ Net.default_config with loss = 0.1 }
          (fun g ~me ~deliver ->
            let storage = stores.(!idx) in
            incr idx;
            Certified.attach g ~me ~name:"pcr" ~storage ~retry_period:3000
              ~deliver ())
      in
      let rng = Tpbs_sim.Rng.create (seed * 7) in
      (* Publisher 0 streams; nodes 1..3 crash and recover at random
         times inside the stream window. *)
      for i = 1 to 12 do
        Engine.schedule w.engine ~delay:(i * 4000) (fun () ->
            Certified.bcast w.protos.(0) (Printf.sprintf "c%d" i))
      done;
      for node = 1 to 3 do
        let down_at = 2000 + Tpbs_sim.Rng.int rng 40_000 in
        let up_after = 5_000 + Tpbs_sim.Rng.int rng 30_000 in
        Engine.schedule w.engine ~delay:down_at (fun () ->
            Net.crash w.net w.nodes.(node));
        Engine.schedule w.engine ~delay:(down_at + up_after) (fun () ->
            Net.recover w.net w.nodes.(node);
            Certified.resume w.protos.(node))
      done;
      Engine.run ~until:3_000_000 w.engine;
      let expect = List.init 12 (fun i -> Printf.sprintf "c%d" (i + 1)) in
      Array.iteri
        (fun i _ ->
          Alcotest.(check (list string))
            (Printf.sprintf "seed %d node %d delivered all in order" seed i)
            expect (payloads w i))
        w.nodes)
    [ 21; 22; 23 ]

let prop_fifo_under_loss () =
  (* Flooding redundancy masks iid loss with high probability once the
     group is large enough (n-1 independent copies per message). *)
  List.iter
    (fun seed ->
      let w =
        make_world ~n:6 ~seed
          ~config:{ latency = 800; jitter = 700; loss = 0.15 }
          (fun g ~me ~deliver -> Fifo.attach g ~me ~name:"pf" ~deliver)
      in
      for i = 1 to 15 do
        Fifo.bcast w.protos.(0) (string_of_int i)
      done;
      Engine.run w.engine;
      let expect = List.init 15 (fun i -> string_of_int (i + 1)) in
      Array.iteri
        (fun i _ ->
          Alcotest.(check (list string))
            (Printf.sprintf "seed %d node %d fifo+loss" seed i)
            expect (payloads w i))
        w.nodes)
    [ 31; 32; 33 ]

(* --- total: bounded duplicate suppression ------------------------------ *)

let test_total_seq_seen_bounded_long_run () =
  (* A lossy submit link makes publishers retransmit, so the sequencer
     sees plenty of duplicate submissions. The old implementation kept
     one (origin, pub_seq) entry per message forever; the frontier
     replacement must stay at the out-of-order residue (near zero once
     everything is sequenced) while still suppressing every
     duplicate. *)
  let events = 300 in
  let w =
    make_world ~n:4 ~seed:77
      ~config:{ latency = 800; jitter = 600; loss = 0.25 }
      (fun g ~me ~deliver -> Total.attach g ~me ~name:"tb" ~deliver)
  in
  for i = 0 to events - 1 do
    Engine.schedule w.engine ~delay:(i * 1500) (fun () ->
        Total.bcast w.protos.(1 + (i mod 3)) (Printf.sprintf "m%d" i))
  done;
  Engine.run ~until:3_000_000 w.engine;
  let residue = Total.seq_seen_size w.protos.(0) in
  Alcotest.(check bool)
    (Printf.sprintf "seq_seen residue bounded (%d <= 32, not %d)" residue
       events)
    true (residue <= 32);
  (* Duplicates suppressed: exactly-once delivery, same agreed order
     everywhere. *)
  let reference = payloads w 0 in
  Alcotest.(check int) "all messages sequenced once" events
    (List.length reference);
  Alcotest.(check int) "no duplicates"
    (List.length (List.sort_uniq String.compare reference))
    (List.length reference);
  (* The sequenced stream has no gap recovery, so other nodes may be
     stuck behind a lost flood; what total order guarantees is that
     every node's delivery sequence is a prefix of the agreed order. *)
  let rec is_prefix a b =
    match (a, b) with
    | [], _ -> true
    | x :: xs, y :: ys when x = y -> is_prefix xs ys
    | _ -> false
  in
  Array.iteri
    (fun i _ ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d delivers a prefix of the agreed order" i)
        true
        (is_prefix (payloads w i) reference))
    w.nodes

let prop_total_seq_seen_bounded =
  QCheck.Test.make ~count:8 ~name:"total: seq_seen bounded under retry churn"
    QCheck.(
      triple (int_range 1 10_000) (int_range 0 35) (int_range 40 120))
    (fun (seed, loss_pct, events) ->
      let w =
        make_world ~n:3 ~seed
          ~config:
            { latency = 700; jitter = 500;
              loss = float_of_int loss_pct /. 100. }
          (fun g ~me ~deliver -> Total.attach g ~me ~name:"tq" ~deliver)
      in
      for i = 0 to events - 1 do
        Engine.schedule w.engine ~delay:(i * 1200) (fun () ->
            Total.bcast w.protos.(i mod 3) (Printf.sprintf "q%d" i))
      done;
      Engine.run ~until:2_500_000 w.engine;
      let residue = Total.seq_seen_size w.protos.(0) in
      let seen = payloads w 0 in
      residue <= 32
      && List.length seen = events
      && List.length (List.sort_uniq String.compare seen) = events)

(* --- certified: retransmission backoff ---------------------------------- *)

let test_certified_backoff_to_crashed_member () =
  (* One member never comes back. The publisher must keep the message
     in its durable log (certified semantics) but throttle resends:
     exponential backoff up to 8x retry_period means ~100p of run time
     costs ~16 resends, not ~100. *)
  let period = 1000 in
  let stores = Array.init 3 (fun _ -> Stable.create ()) in
  let idx = ref 0 in
  let w =
    make_world ~n:3 ~seed:11 ~config:{ latency = 100; jitter = 0; loss = 0. }
      (fun g ~me ~deliver ->
        let storage = stores.(!idx) in
        incr idx;
        Certified.attach g ~me ~name:"cb" ~storage ~retry_period:period
          ~deliver ())
  in
  Net.crash w.net w.nodes.(2);
  Certified.bcast w.protos.(0) "hello";
  (* Early window: the exponential ramp (resends at ~1p, 3p, 7p, 15p,
     then every 8p) gives ~15 resends in the first 100 periods. *)
  Engine.run ~until:(100 * period) w.engine;
  let early = Certified.retransmits w.protos.(0) in
  Alcotest.(check bool)
    (Printf.sprintf "ramp bounded (4 <= %d <= 30)" early)
    true
    (early >= 4 && early <= 30);
  (* Steady state: capped at one resend per 8 periods. *)
  Engine.run ~until:(300 * period) w.engine;
  let late = Certified.retransmits w.protos.(0) in
  let rate_window = late - early in
  Alcotest.(check bool)
    (Printf.sprintf "steady-state rate capped (%d resends / 200 periods <= 35)"
       rate_window)
    true
    (rate_window >= 10 && rate_window <= 35);
  (* The live member still got it, exactly once; only the crashed one
     is outstanding. *)
  Alcotest.(check (list string)) "live member delivered" [ "hello" ]
    (payloads w 1);
  Alcotest.(check int) "only crashed member unacked" 1
    (Certified.unacked w.protos.(0));
  Alcotest.(check int) "log retained for recovery" 1
    (Certified.log_size w.protos.(0))

let test_certified_backoff_resets_on_recovery () =
  (* After the crashed member recovers and resumes, sync fills it in
     and the publisher's waiting set empties. *)
  let period = 1000 in
  let stores = Array.init 3 (fun _ -> Stable.create ()) in
  let idx = ref 0 in
  let w =
    make_world ~n:3 ~seed:13 ~config:{ latency = 100; jitter = 0; loss = 0. }
      (fun g ~me ~deliver ->
        let storage = stores.(!idx) in
        incr idx;
        Certified.attach g ~me ~name:"cr" ~storage ~retry_period:period
          ~deliver ())
  in
  Net.crash w.net w.nodes.(2);
  Certified.bcast w.protos.(0) "payload";
  Engine.run ~until:(50 * period) w.engine;
  Net.recover w.net w.nodes.(2);
  Certified.resume w.protos.(2);
  Engine.run ~until:(200 * period) w.engine;
  Alcotest.(check (list string)) "recovered member delivered" [ "payload" ]
    (payloads w 2);
  Alcotest.(check int) "nothing outstanding" 0 (Certified.unacked w.protos.(0))

let suite =
  ( "group",
    [ Alcotest.test_case "vclock: ops" `Quick test_vclock_ops;
      Alcotest.test_case "vclock: CBCAST condition" `Quick
        test_vclock_deliverable;
      Alcotest.test_case "vclock: wire roundtrip" `Quick test_vclock_wire;
      Alcotest.test_case "membership" `Quick test_membership;
      Alcotest.test_case "best-effort: all deliver" `Quick
        test_best_effort_all_deliver;
      Alcotest.test_case "best-effort: lossy" `Quick test_best_effort_lossy;
      Alcotest.test_case "rbcast: exactly-once delivery" `Quick
        test_rbcast_all_deliver_once;
      Alcotest.test_case "rbcast: masks loss" `Quick test_rbcast_masks_loss;
      Alcotest.test_case "rbcast: publisher crash" `Quick
        test_rbcast_survives_publisher_crash_after_first_send;
      Alcotest.test_case "fifo: publisher order" `Quick
        test_fifo_publisher_order;
      Alcotest.test_case "fifo: interleaved publishers" `Quick
        test_fifo_interleaved_publishers;
      Alcotest.test_case "causal: happens-before respected" `Quick
        test_causal_happens_before;
      Alcotest.test_case "causal: implies fifo" `Quick test_causal_implies_fifo;
      Alcotest.test_case "total: agreement" `Quick test_total_agreement;
      Alcotest.test_case "total+causal: agreement and causality" `Quick
        test_total_causal_agreement_and_causality;
      Alcotest.test_case "certified: basic" `Quick test_certified_basic;
      Alcotest.test_case "certified: retention + replay" `Quick
        test_certified_retention_and_replay;
      Alcotest.test_case "certified: malformed stable state" `Quick
        test_certified_malformed_state;
      Alcotest.test_case "certified: earliest-deadline timer" `Quick
        test_certified_timer_earliest_deadline;
      Alcotest.test_case "certified: retransmits through loss" `Quick
        test_certified_retransmits_through_loss;
      Alcotest.test_case "certified: subscriber crash recovery" `Quick
        test_certified_subscriber_crash_recovery;
      Alcotest.test_case "certified: publisher crash recovery" `Quick
        test_certified_publisher_crash_recovery;
      Alcotest.test_case "gossip: high fanout reaches almost all" `Quick
        test_gossip_high_fanout_reaches_almost_all;
      Alcotest.test_case "gossip: fanout matters" `Quick
        test_gossip_fanout_matters;
      Alcotest.test_case "gossip: pull improves delivery" `Quick
        test_gossip_pull_improves_delivery;
      Alcotest.test_case "gossip: bounded state" `Quick
        test_gossip_bounded_state;
      Alcotest.test_case "gossip: seen table bounded on long runs" `Quick
        test_gossip_seen_bounded_long_run;
      Alcotest.test_case "property: total-order prefix agreement" `Quick
        prop_total_prefix_agreement;
      Alcotest.test_case "property: causal chains across nodes" `Quick
        prop_causal_chain;
      Alcotest.test_case "property: certified with random crashes" `Quick
        prop_certified_random_crashes;
      Alcotest.test_case "property: fifo under loss" `Quick
        prop_fifo_under_loss;
      Alcotest.test_case "total: seq_seen bounded on long runs" `Quick
        test_total_seq_seen_bounded_long_run;
      Alcotest.test_case "certified: backoff to crashed member" `Quick
        test_certified_backoff_to_crashed_member;
      Alcotest.test_case "certified: backoff clears on recovery" `Quick
        test_certified_backoff_resets_on_recovery ]
    @ List.map QCheck_alcotest.to_alcotest [ prop_total_seq_seen_bounded ] )
