(* Covering analysis (Subsume.covers / witness search) soundness, and
   the broker-side covering index built on the same core.

   [covers a b] claims every obvent matching [a] matches [b]. The
   qcheck properties hold the claim against the ground truth — actual
   [Rfilter] evaluation on random conforming obvents — and check that
   counterexample witnesses really are counterexamples. *)

open Helpers
module Rfilter = Tpbs_filter.Rfilter
module Subsume = Tpbs_filter.Subsume
module Frame = Tpbs_transport.Frame
module Proto = Tpbs_transport.Proto
module Broker = Tpbs_transport.Broker
module Trace = Tpbs_trace.Trace

let reg = stock_registry ()

let param = "StockQuote"

(* Random remote filters: the atom-normal subset of the stock
   expression generator (retry on the occasional unliftable draw). *)
let rec gen_rfilter st =
  match
    Rfilter.of_expr ~env:[] ~param (gen_stock_expr st)
  with
  | Some rf -> rf
  | None -> gen_rfilter st

(* Single-conjunction filters, where the covering procedure decides
   most pairs — used for the transitivity property. *)
let rec gen_conj_rfilter st =
  let rf = gen_rfilter st in
  match Rfilter.conjunction_atoms rf with
  | Some _ -> rf
  | None -> gen_conj_rfilter st

let print_rf rf = Fmt.str "%a" Rfilter.pp rf

let arb_rf_pair_quotes =
  QCheck.make
    ~print:(fun ((a, b), _) -> print_rf a ^ "  vs  " ^ print_rf b)
    QCheck.Gen.(
      pair (pair gen_rfilter gen_rfilter)
        (list_size (return 60) (gen_quote reg)))

let covers = Subsume.covers ~registry:reg ~param

(* covers ⇒ the evaluation oracle agrees on every sampled obvent. *)
let prop_covers_sound =
  QCheck.Test.make ~name:"covers is sound against Rfilter.eval" ~count:300
    arb_rf_pair_quotes (fun ((a, b), quotes) ->
      (not (covers a b))
      || List.for_all
           (fun q ->
             (not (Rfilter.matches_obvent a q)) || Rfilter.matches_obvent b q)
           quotes)

let prop_covers_reflexive =
  QCheck.Test.make ~name:"covers is reflexive" ~count:200
    (QCheck.make ~print:print_rf gen_rfilter)
    (fun a -> covers a a)

let prop_covers_transitive =
  QCheck.Test.make ~name:"covers is transitive on conjunctions" ~count:300
    (QCheck.make
       ~print:(fun (a, (b, c)) ->
         String.concat "  /  " (List.map print_rf [ a; b; c ]))
       QCheck.Gen.(pair gen_conj_rfilter (pair gen_conj_rfilter gen_conj_rfilter)))
    (fun (a, (b, c)) ->
      (not (covers a b && covers b c)) || covers a c)

(* A Not_covered verdict must come with a machine-checkable witness:
   conforming, matching [a], escaping [b]. *)
let prop_witness_valid =
  QCheck.Test.make ~name:"witnesses evaluate as claimed" ~count:300
    arb_rf_pair_quotes (fun ((a, b), quotes) ->
      match Subsume.covers_witness ~registry:reg ~cls:param ~param a b with
      | Subsume.Not_covered w ->
          Registry.conforms reg w param
          && Rfilter.eval a w
          && not (Rfilter.eval b w)
      | Subsume.Covered ->
          List.for_all
            (fun q ->
              (not (Rfilter.matches_obvent a q)) || Rfilter.matches_obvent b q)
            quotes
      | Subsume.Unknown -> true)

(* --- directed covering facts ------------------------------------------- *)

let rf expr =
  match Rfilter.of_expr ~env:[] ~param expr with
  | Some rf -> rf
  | None -> Alcotest.fail "expression did not lift to a remote filter"

let test_covering_facts () =
  let open Expr in
  let price = getter [ "getPrice" ] in
  let company = getter [ "getCompany" ] in
  let lt50 = rf (Binop (Lt, price, float 50.)) in
  let lt100 = rf (Binop (Lt, price, float 100.)) in
  let narrow =
    rf
      (Binop
         ( And,
           Binop (Lt, price, float 50.),
           Binop (Eq, company, str "Acme Corp") ))
  in
  Alcotest.(check bool) "price<50 covered by price<100" true (covers lt50 lt100);
  Alcotest.(check bool) "conjunction covered by its bound" true
    (covers narrow lt100);
  Alcotest.(check bool) "price<100 not covered by price<50" false
    (covers lt100 lt50);
  (* the union of {<100, <50∧Acme, ≥150} leaves [100,150) open: the
     procedure must find (and check) a witness in the gap *)
  let union =
    {
      Rfilter.param;
      paths = [||];
      formula =
        Or
          [ lt100.Rfilter.formula;
            narrow.Rfilter.formula;
            (rf (Binop (Ge, price, float 150.))).Rfilter.formula ];
    }
  in
  let all = { Rfilter.param; paths = [||]; formula = True } in
  (match Subsume.covers_witness ~registry:reg ~cls:param ~param all union with
  | Subsume.Not_covered w -> (
      Alcotest.(check bool) "witness conforms" true
        (Registry.conforms reg w param);
      Alcotest.(check bool) "witness escapes the union" false
        (Rfilter.eval union w);
      match Value.field w "price" with
      | Some (Value.Float p) ->
          Alcotest.(check bool) "witness price sits in the gap" true
            (p >= 100. && p < 150.)
      | _ -> Alcotest.fail "witness has no float price")
  | Subsume.Covered -> Alcotest.fail "gap not detected"
  | Subsume.Unknown -> Alcotest.fail "no witness found for the gap");
  (* closing the gap closes the verdict *)
  let closed =
    { union with Rfilter.formula = Or [ union.formula; (rf (Binop (Ge, price, float 100.))).Rfilter.formula ] }
  in
  Alcotest.(check bool) "no gap once closed" true (covers all closed)

(* --- broker covering index (in-process, raw protocol) ------------------- *)

(* Drive a broker without forking: a raw TCP peer speaks the frame
   protocol directly, the test polls the broker in between, and the
   ambient trace registry exposes the suppression counters. *)
let send fd m =
  let s = Frame.frame (Proto.encode m) in
  ignore (Unix.write_substring fd s 0 (String.length s))

let counter tr name = Trace.Counter.value (Trace.counter tr name)

let test_broker_covering_counters () =
  let tr = Trace.create () in
  Trace.set_ambient tr;
  let b = Broker.create ~config:{ Broker.default_config with warmup_ms = 0 }
      ~port:0 ()
  in
  Fun.protect ~finally:(fun () -> Broker.stop b)
  @@ fun () ->
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, Broker.port b));
  let pump () =
    for _ = 1 to 5 do
      ignore (Broker.poll b ~timeout_ms:5 ())
    done
  in
  pump ();
  send fd (Proto.Hello { client = "raw"; window = 64 });
  send fd (Proto.Advertise { cls = "TQuote"; supers = [] });
  (* sid 0: subscribe-to-all; sids 1 and 2 are narrower — the broker
     must record them without indexing them *)
  send fd (Proto.Sub { sid = 0; param = "TQuote"; filter = Value.Null });
  let seq_ge k =
    Rfilter.to_value
      (rf (Expr.Binop (Ge, Expr.getter [ "getSeq" ], Expr.int k)))
  in
  send fd (Proto.Sub { sid = 1; param = "TQuote"; filter = seq_ge 0 });
  send fd (Proto.Sub { sid = 2; param = "TQuote"; filter = seq_ge 10 });
  pump ();
  Alcotest.(check int) "both narrower subs suppressed" 2
    (counter tr "broker.subs_covered");
  Alcotest.(check int) "none restored yet" 0
    (counter tr "broker.subs_restored");
  (* dropping the coverer promotes the survivors: sid 1 (seq≥0) is
     installed, and re-covers sid 2 (seq≥10) in the same sweep *)
  send fd (Proto.Unsub { sid = 0 });
  pump ();
  Alcotest.(check int) "one promoted into the index" 1
    (counter tr "broker.subs_restored");
  (* dropping the promoted coverer promotes the last one *)
  send fd (Proto.Unsub { sid = 1 });
  pump ();
  Alcotest.(check int) "last one promoted too" 2
    (counter tr "broker.subs_restored")

let suite =
  ( "cover",
    [ Alcotest.test_case "covering facts + gap witness" `Quick
        test_covering_facts;
      Alcotest.test_case "broker covering counters" `Quick
        test_broker_covering_counters ]
    @ List.map QCheck_alcotest.to_alcotest
        [ prop_covers_sound;
          prop_covers_reflexive;
          prop_covers_transitive;
          prop_witness_valid ] )
