(* Shared fixtures and QCheck generators for the test suites. *)

module Value = Tpbs_serial.Value
module Registry = Tpbs_types.Registry
module Vtype = Tpbs_types.Vtype
module Obvent = Tpbs_obvent.Obvent
module Expr = Tpbs_filter.Expr

(* --- the stock-trade registry from the paper's running example --- *)

let stock_registry () =
  let reg = Registry.create () in
  Registry.declare_class reg ~name:"StockObvent" ~implements:[ "Obvent" ]
    ~attrs:
      [ "company", Vtype.Tstring; "price", Vtype.Tfloat; "amount", Vtype.Tint ]
    ();
  Registry.declare_class reg ~name:"StockQuote" ~extends:"StockObvent" ();
  Registry.declare_class reg ~name:"StockRequest" ~extends:"StockObvent" ();
  Registry.declare_class reg ~name:"SpotPrice" ~extends:"StockRequest" ();
  Registry.declare_class reg ~name:"MarketPrice" ~extends:"StockRequest" ();
  reg

let quote reg ?(company = "Telco Mobiles") ?(price = 80.) ?(amount = 10) () =
  Obvent.make reg "StockQuote"
    [ "company", Value.Str company; "price", Value.Float price;
      "amount", Value.Int amount ]

(* --- generators ---------------------------------------------------- *)

let companies =
  [| "Telco Mobiles"; "Telco Fixnet"; "Acme Corp"; "Banka"; "Octopus";
     "Telco Cloud"; "Initech"; "Globex" |]

let gen_company = QCheck.Gen.oneofa companies

let gen_quote reg =
  QCheck.Gen.map3
    (fun company price amount ->
      quote reg ~company ~price:(float_of_int price /. 2.) ~amount ())
    gen_company
    QCheck.Gen.(int_range 0 400)
    QCheck.Gen.(int_range 1 1000)

(* Arbitrary serializable values, depth-bounded. *)
let gen_value =
  let open QCheck.Gen in
  sized_size (int_range 0 4)
  @@ fix (fun self depth ->
         let leaf =
           oneof
             [ return Value.Null;
               map (fun b -> Value.Bool b) bool;
               map (fun i -> Value.Int i) int;
               map (fun f -> Value.Float f) float;
               map (fun s -> Value.Str s) string_small;
               map
                 (fun (a, b) ->
                   Value.Remote { iface = "I"; node_id = a; object_id = b })
                 (pair small_nat small_nat) ]
         in
         if depth = 0 then leaf
         else
           frequency
             [ 4, leaf;
               1, map (fun vs -> Value.List vs) (list_size (int_range 0 4) (self (depth - 1)));
               1,
               map
                 (fun fields ->
                   Value.Obj
                     { cls = "C";
                       fields =
                         List.mapi (fun i v -> Printf.sprintf "f%d" i, v) fields })
                 (list_size (int_range 0 4) (self (depth - 1))) ])

let arb_value = QCheck.make ~print:Value.to_string gen_value

(* Random well-typed filter expressions over StockQuote. *)
let gen_stock_expr =
  let open QCheck.Gen in
  let price = Expr.getter [ "getPrice" ] in
  let amount = Expr.getter [ "getAmount" ] in
  let company = Expr.getter [ "getCompany" ] in
  let cmp_num field =
    oneofl Expr.[ Lt; Le; Gt; Ge; Eq; Ne ] >>= fun op ->
    int_range 0 250 >>= fun k ->
    oneofl
      [ Expr.Binop (op, field, Expr.float (float_of_int k));
        Expr.Binop (op, field, Expr.int k) ]
  in
  let atom =
    frequency
      [ 3, cmp_num price;
        2,
        ( oneofl Expr.[ Lt; Le; Gt; Ge; Eq; Ne ] >>= fun op ->
          int_range 0 1200 >>= fun k ->
          return (Expr.Binop (op, amount, Expr.int k)) );
        2,
        ( gen_company >>= fun c ->
          oneofl
            [ Expr.Binop (Eq, company, Expr.str c);
              Expr.Binop (Contains, company, Expr.str (String.sub c 0 3));
              Expr.Binop (Starts_with, company, Expr.str (String.sub c 0 5));
              Expr.Binop
                (Ne, Expr.Binop (Index_of, company, Expr.str "Telco"),
                 Expr.int (-1)) ] );
        1, map (fun b -> Expr.bool b) bool ]
  in
  sized_size (int_range 0 3)
  @@ fix (fun self depth ->
         if depth = 0 then atom
         else
           frequency
             [ 3, atom;
               2,
               map2 (fun a b -> Expr.Binop (And, a, b)) (self (depth - 1))
                 (self (depth - 1));
               2,
               map2 (fun a b -> Expr.Binop (Or, a, b)) (self (depth - 1))
                 (self (depth - 1));
               1, map (fun e -> Expr.Unop (Not, e)) (self (depth - 1)) ])

let arb_stock_expr = QCheck.make ~print:Expr.to_string gen_stock_expr

let value_testable = Alcotest.testable Value.pp Value.equal

let expr_testable = Alcotest.testable Expr.pp Expr.equal

let qsuite name tests = name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests
