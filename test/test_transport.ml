(* TCP transport: adversarial framing, protocol roundtrips, and
   in-process broker/client end-to-end runs over real sockets. *)

module Frame = Tpbs_transport.Frame
module Proto = Tpbs_transport.Proto
module Conn = Tpbs_transport.Conn
module Broker = Tpbs_transport.Broker
module Client = Tpbs_transport.Client
module Value = Tpbs_serial.Value
module Codec = Tpbs_serial.Codec
module Registry = Tpbs_types.Registry
module Vtype = Tpbs_types.Vtype
module Obvent = Tpbs_obvent.Obvent
module Engine = Tpbs_sim.Engine
module Net = Tpbs_sim.Net
module Pubsub = Tpbs_core.Pubsub
module Trace = Tpbs_trace.Trace

(* --- framing: the happy path ----------------------------------------- *)

let pop_frame d =
  match Frame.Decoder.pop d with
  | Frame.Decoder.Frame s -> s
  | Frame.Decoder.Await -> Alcotest.fail "expected a frame, got Await"
  | Frame.Decoder.Corrupt why -> Alcotest.failf "expected a frame, got Corrupt %s" why

let check_await d =
  match Frame.Decoder.pop d with
  | Frame.Decoder.Await -> ()
  | Frame.Decoder.Frame s -> Alcotest.failf "expected Await, got %d-byte frame" (String.length s)
  | Frame.Decoder.Corrupt why -> Alcotest.failf "expected Await, got Corrupt %s" why

let check_corrupt d =
  match Frame.Decoder.pop d with
  | Frame.Decoder.Corrupt _ -> ()
  | Frame.Decoder.Frame _ -> Alcotest.fail "expected Corrupt, got a frame"
  | Frame.Decoder.Await -> Alcotest.fail "expected Corrupt, got Await"

let test_frame_roundtrip () =
  let d = Frame.Decoder.create () in
  let payloads = [ ""; "x"; "hello world"; String.make 1000 '\xff' ] in
  Frame.Decoder.feed_string d
    (String.concat "" (List.map Frame.frame payloads));
  List.iter
    (fun p -> Alcotest.(check string) "payload" p (pop_frame d))
    payloads;
  check_await d;
  Alcotest.(check int) "nothing buffered" 0 (Frame.Decoder.buffered d);
  Alcotest.(check int) "four frames" 4 (Frame.Decoder.frames d)

let test_frame_dribble () =
  (* One byte per feed — every header and payload boundary is hit.
     Pop after every byte: a frame must appear exactly when its last
     byte lands, never before. *)
  let d = Frame.Decoder.create () in
  let stream = Frame.frame "dribbled" ^ Frame.frame "" in
  let popped = ref [] in
  String.iter
    (fun c ->
      Frame.Decoder.feed d (String.make 1 c) 0 1;
      match Frame.Decoder.pop d with
      | Frame.Decoder.Frame s -> popped := s :: !popped
      | Frame.Decoder.Await -> ()
      | Frame.Decoder.Corrupt why -> Alcotest.failf "corrupt: %s" why)
    stream;
  Alcotest.(check (list string)) "both frames, in order" [ "dribbled"; "" ]
    (List.rev !popped);
  check_await d;
  Alcotest.(check int) "nothing buffered" 0 (Frame.Decoder.buffered d)

let test_frame_all_split_points () =
  (* Split the stream at every possible point into two feeds. *)
  let stream = Frame.frame "left" ^ Frame.frame "right" in
  for cut = 0 to String.length stream do
    let d = Frame.Decoder.create () in
    Frame.Decoder.feed d stream 0 cut;
    Frame.Decoder.feed d stream cut (String.length stream - cut);
    Alcotest.(check string) "left" "left" (pop_frame d);
    Alcotest.(check string) "right" "right" (pop_frame d);
    check_await d
  done

let test_frame_truncated_is_await () =
  let d = Frame.Decoder.create () in
  let f = Frame.frame "truncated tail" in
  Frame.Decoder.feed d f 0 (String.length f - 3);
  check_await d;
  Alcotest.(check bool) "not dead" false (Frame.Decoder.is_dead d);
  (* The rest arrives later: the frame completes. *)
  Frame.Decoder.feed d f (String.length f - 3) 3;
  Alcotest.(check string) "completes" "truncated tail" (pop_frame d)

let test_frame_corrupt_crc_sticky () =
  let d = Frame.Decoder.create () in
  let f = Bytes.of_string (Frame.frame "good bytes" ^ Frame.frame "after") in
  (* Flip one payload byte of the first frame. *)
  Bytes.set f Frame.header_bytes
    (Char.chr (Char.code (Bytes.get f Frame.header_bytes) lxor 0x01));
  Frame.Decoder.feed_string d (Bytes.to_string f);
  check_corrupt d;
  Alcotest.(check bool) "dead" true (Frame.Decoder.is_dead d);
  (* Sticky: the pristine second frame is gone with the stream, and
     later feeds are discarded. *)
  check_corrupt d;
  Frame.Decoder.feed_string d (Frame.frame "too late");
  check_corrupt d;
  Alcotest.(check int) "no frames decoded" 0 (Frame.Decoder.frames d)

let test_frame_oversize_and_negative_length () =
  List.iter
    (fun len ->
      let d = Frame.Decoder.create ~max_frame:1024 () in
      let hdr = Bytes.create Frame.header_bytes in
      Bytes.set_int32_le hdr 0 len;
      Bytes.set_int32_le hdr 4 0l;
      Frame.Decoder.feed_string d (Bytes.to_string hdr);
      check_corrupt d)
    [ 2048l; Int32.max_int; -1l; Int32.min_int ]

let test_frame_corrupt_length_of_valid_frame () =
  (* A length prefix lying within bounds but pointing at the wrong
     cut: the CRC refuses the mis-framed payload. *)
  let d = Frame.Decoder.create () in
  let f = Bytes.of_string (Frame.frame "abcdef" ^ Frame.frame "ghijkl") in
  Bytes.set_int32_le f 0 4l;
  Frame.Decoder.feed_string d (Bytes.to_string f);
  check_corrupt d

(* --- protocol roundtrips --------------------------------------------- *)

let all_msgs : Proto.msg list =
  [ Hello { client = "c-1"; window = 64 };
    Welcome { window = 0 };
    Advertise { cls = "StockQuote"; supers = [ "Obvent"; "StockObvent" ] };
    Sub { sid = 3; param = "StockQuote"; filter = Value.Null };
    Sub
      { sid = 4;
        param = "Alarm";
        filter = Value.List [ Value.Str "and"; Value.Int 1 ] };
    Unsub { sid = 3 };
    Pub { pseq = 42; cls = "StockQuote"; envelope = "\x00\xffraw bytes" };
    Pub_ack { pseq = 42 };
    Deliver
      { origin = "c-1"; pseq = 42; cls = "StockQuote"; envelope = "" };
    Credit { n = 32 };
    Bye ]

let test_proto_roundtrip () =
  List.iter
    (fun m ->
      match Proto.decode (Proto.encode m) with
      | Some m' ->
          Alcotest.(check bool)
            (Printf.sprintf "roundtrip %s" (Proto.tag m))
            true (m = m')
      | None -> Alcotest.failf "%s did not decode" (Proto.tag m))
    all_msgs

let test_proto_rejects_garbage () =
  List.iter
    (fun s ->
      match Proto.decode s with
      | None -> ()
      | Some m -> Alcotest.failf "garbage decoded as %s" (Proto.tag m))
    [ ""; "\xff\xff\xff"; Codec.encode (Value.Str "not a message");
      Codec.encode (Value.List [ Value.Str "unknown-tag"; Value.Int 1 ]);
      Codec.encode (Value.List [ Value.Str "pub"; Value.Str "wrong shape" ]) ]

(* --- end-to-end over real sockets ------------------------------------ *)

let test_registry () =
  let reg = Registry.create () in
  Registry.declare_class reg ~name:"TQuote" ~implements:[ "Obvent" ]
    ~attrs:[ ("seq", Vtype.Tint); ("origin", Vtype.Tstring) ]
    ();
  reg

type ctx = {
  reg : Registry.t;
  engine : Engine.t;
  proc : Pubsub.Process.t;
  client : Client.t;
}

let fresh_ctx ~id ~port =
  let reg = test_registry () in
  let engine = Engine.create ~seed:1 () in
  let net = Net.create engine in
  let domain = Pubsub.Domain.create reg net in
  let proc = Pubsub.Process.create domain (Net.add_node net) in
  match Client.connect ~host:"127.0.0.1" ~port ~id ~timeout_ms:2000 () with
  | None -> Alcotest.failf "client %s cannot reach broker on port %d" id port
  | Some client ->
      Client.attach client domain proc;
      { reg; engine; proc; client }

(* The broker runs in a forked child (as under the real daemon and the
   soak harness): [Client.connect]'s blocking handshake needs a live
   peer. The parent keeps the pre-bound listening socket, so a crashed
   incarnation can be replaced on the very same fd. A control pipe
   gives the child a clean quit signal; SIGKILL gives it a crash. *)
type broker_proc = { bpid : int; ctl : Unix.file_descr }

let instant_config = { Broker.default_config with warmup_ms = 0 }

let fork_broker ?(config = instant_config) ~listen_fd () =
  let ctl_r, ctl_w = Unix.pipe () in
  match Unix.fork () with
  | 0 ->
      Unix.close ctl_w;
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      Trace.set_ambient (Trace.create ());
      let b = Broker.create ~config ~listen_fd ~port:0 () in
      (try
         let quit = ref false in
         while not !quit do
           if Broker.poll b ~extra_fds:[ ctl_r ] ~timeout_ms:20 () then
             quit := true
         done
       with _ -> ());
      Broker.stop b;
      Unix._exit 0
  | pid ->
      Unix.close ctl_r;
      { bpid = pid; ctl = ctl_w }

let quit_broker bp =
  (try ignore (Unix.write_substring bp.ctl "q" 0 1)
   with Unix.Unix_error _ -> ());
  (try Unix.close bp.ctl with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] bp.bpid)

let kill_broker bp =
  Unix.kill bp.bpid Sys.sigkill;
  (try Unix.close bp.ctl with Unix.Unix_error _ -> ());
  ignore (Unix.waitpid [] bp.bpid)

let bound_port fd =
  match Unix.getsockname fd with
  | Unix.ADDR_INET (_, p) -> p
  | _ -> Alcotest.fail "listening socket has no inet port"

(* Drive the clients until [until ()] or timeout. *)
let spin ~ctxs ~until ~for_ms () =
  let deadline = Unix.gettimeofday () +. (float_of_int for_ms /. 1000.) in
  while (not (until ())) && Unix.gettimeofday () < deadline do
    List.iter
      (fun c ->
        ignore (Client.poll c.client ~timeout_ms:5);
        Engine.run c.engine)
      ctxs
  done;
  until ()

let publish_quote ctx ~origin seq =
  Pubsub.Process.publish ctx.proc
    (Obvent.make ctx.reg "TQuote"
       [ ("seq", Value.Int seq); ("origin", Value.Str origin) ]);
  Engine.run ctx.engine

(* Subscriber bookkeeping: collect (origin, seq), flag dups/reorders. *)
let collector ctx =
  let got = ref [] and dups = ref 0 and reorders = ref 0 in
  let last = Hashtbl.create 4 in
  let seen = Hashtbl.create 64 in
  let handler ob =
    match (Obvent.get ob "seq", Obvent.get ob "origin") with
    | Value.Int seq, Value.Str origin ->
        if Hashtbl.mem seen (origin, seq) then incr dups
        else Hashtbl.replace seen (origin, seq) ();
        (match Hashtbl.find_opt last origin with
        | Some prev when seq <= prev -> incr reorders
        | _ -> ());
        Hashtbl.replace last origin seq;
        got := (origin, seq) :: !got
    | _ -> incr reorders
  in
  let sub = Pubsub.Process.subscribe ctx.proc ~param:"TQuote" handler in
  Pubsub.Subscription.activate sub;
  Engine.run ctx.engine;
  ignore (Client.poll ctx.client ~timeout_ms:10);
  (got, dups, reorders)

let test_e2e_two_clients () =
  Trace.set_ambient (Trace.create ());
  let listen_fd = Broker.listen_socket ~host:"127.0.0.1" ~port:0 in
  let port = bound_port listen_fd in
  let bp = fork_broker ~listen_fd () in
  Fun.protect ~finally:(fun () -> quit_broker bp; Unix.close listen_fd)
  @@ fun () ->
  let sub1 = fresh_ctx ~id:"sub1" ~port in
  let sub2 = fresh_ctx ~id:"sub2" ~port in
  let pub = fresh_ctx ~id:"pub" ~port in
  let ctxs = [ sub1; sub2; pub ] in
  let got1, dups1, re1 = collector sub1 in
  let got2, dups2, re2 = collector sub2 in
  ignore (spin ~ctxs ~until:(fun () -> false) ~for_ms:100 ());
  let n = 30 in
  for i = 0 to n - 1 do
    publish_quote pub ~origin:"pub" i
  done;
  let all_in () = List.length !got1 = n && List.length !got2 = n in
  Alcotest.(check bool) "both subscribers got every event" true
    (spin ~ctxs ~until:all_in ~for_ms:10000 ());
  Alcotest.(check int) "no dups" 0 (!dups1 + !dups2);
  Alcotest.(check int) "no reorders" 0 (!re1 + !re2);
  Alcotest.(check (list (pair string int))) "in publish order"
    (List.init n (fun i -> ("pub", i)))
    (List.rev !got1);
  List.iter (fun c -> Client.close c.client) ctxs

let test_e2e_broker_restart_exactly_once () =
  (* The certified-delivery claim: SIGKILL-style broker death between
     two batches, a successor adopts the same listening socket, the
     subscriber re-subscribes, the publisher retransmits whatever was
     unacknowledged — every event arrives exactly once, in order. *)
  Trace.set_ambient (Trace.create ());
  let listen_fd = Broker.listen_socket ~host:"127.0.0.1" ~port:0 in
  let port = bound_port listen_fd in
  let bp1 = fork_broker ~listen_fd () in
  let sub = fresh_ctx ~id:"sub" ~port in
  let pub = fresh_ctx ~id:"pub" ~port in
  let ctxs = [ sub; pub ] in
  let got, dups, reorders = collector sub in
  let n1 = 10 and n2 = 10 in
  for i = 0 to n1 - 1 do
    publish_quote pub ~origin:"pub" i
  done;
  ignore (spin ~ctxs ~until:(fun () -> List.length !got = n1) ~for_ms:5000 ());
  Alcotest.(check int) "first batch delivered" n1 (List.length !got);
  (* Crash: SIGKILL — no goodbye, no flush. The parent still owns the
     listening socket. *)
  kill_broker bp1;
  (* Publish into the outage: everything queues client-side. *)
  for i = n1 to n1 + n2 - 1 do
    publish_quote pub ~origin:"pub" i
  done;
  ignore (spin ~ctxs ~until:(fun () -> false) ~for_ms:100 ());
  Alcotest.(check bool) "publisher holds the unacked batch" true
    (Client.queued_count pub.client >= n2);
  let bp2 = fork_broker ~listen_fd () in
  Fun.protect ~finally:(fun () -> quit_broker bp2; Unix.close listen_fd)
  @@ fun () ->
  (* Subscriber reconnects (and re-subscribes) first, then the
     publisher — the in-process twin of the daemon's warmup window. *)
  Alcotest.(check bool) "subscriber reconnects" true
    (Client.reconnect ~timeout_ms:2000 sub.client);
  ignore (spin ~ctxs:[ sub ] ~until:(fun () -> false) ~for_ms:100 ());
  Alcotest.(check bool) "publisher reconnects" true
    (Client.reconnect ~timeout_ms:2000 pub.client);
  let all = n1 + n2 in
  Alcotest.(check bool) "second batch recovered" true
    (spin ~ctxs ~until:(fun () -> List.length !got = all) ~for_ms:10000 ());
  Alcotest.(check int) "no duplicate deliveries" 0 !dups;
  Alcotest.(check int) "no reordering" 0 !reorders;
  Alcotest.(check (list (pair string int))) "the full sequence, in order"
    (List.init all (fun i -> ("pub", i)))
    (List.rev !got);
  (* Deliveries raced ahead of the cumulative ack — give it a beat. *)
  Alcotest.(check bool) "publisher fully acknowledged" true
    (spin ~ctxs ~until:(fun () -> Client.queued_count pub.client = 0)
       ~for_ms:5000 ());
  List.iter (fun c -> Client.close c.client) ctxs

let test_e2e_corrupt_bytes_condemn_connection () =
  (* A rogue peer spraying damaged frames must cost only its own
     connection: the broker condemns and drops it (observable as EOF
     on the rogue's socket) and keeps serving everyone else. *)
  Trace.set_ambient (Trace.create ());
  let listen_fd = Broker.listen_socket ~host:"127.0.0.1" ~port:0 in
  let port = bound_port listen_fd in
  let bp = fork_broker ~listen_fd () in
  Fun.protect ~finally:(fun () -> quit_broker bp; Unix.close listen_fd)
  @@ fun () ->
  let sub = fresh_ctx ~id:"sub" ~port in
  let pub = fresh_ctx ~id:"pub" ~port in
  let ctxs = [ sub; pub ] in
  let got, _, _ = collector sub in
  let rogue = Unix.socket PF_INET SOCK_STREAM 0 in
  Unix.connect rogue (ADDR_INET (Unix.inet_addr_loopback, port));
  let junk = String.make 64 '\xde' in
  ignore (Unix.write_substring rogue junk 0 (String.length junk));
  (* The broker hangs up on the rogue... *)
  (match Unix.select [ rogue ] [] [] 5.0 with
  | [ _ ], _, _ ->
      Alcotest.(check int) "rogue sees EOF" 0
        (Unix.read rogue (Bytes.create 16) 0 16)
  | _ -> Alcotest.fail "broker never hung up on the rogue");
  (* ...and the well-behaved pair still works end to end. *)
  publish_quote pub ~origin:"pub" 0;
  Alcotest.(check bool) "clean traffic still flows" true
    (spin ~ctxs ~until:(fun () -> !got <> []) ~for_ms:5000 ());
  Unix.close rogue;
  List.iter (fun c -> Client.close c.client) ctxs

(* --- reconnect backoff ------------------------------------------------ *)

module Backoff = Client.Backoff

(* --- covering suppression is delivery-invariant ----------------------- *)

(* The broker's covering index suppresses a [Sub] entailed by an
   installed subscription of the same session. Run one scenario twice —
   covering on and off — and demand byte-identical per-subscription
   delivery sequences, including after the covering subscription is
   dropped mid-run (which forces the broker to promote the suppressed
   ones back into the live index). *)
let run_covering_scenario ~covering =
  Trace.set_ambient (Trace.create ());
  let listen_fd = Broker.listen_socket ~host:"127.0.0.1" ~port:0 in
  let port = bound_port listen_fd in
  let bp = fork_broker ~config:{ instant_config with covering } ~listen_fd () in
  Fun.protect ~finally:(fun () -> quit_broker bp; Unix.close listen_fd)
  @@ fun () ->
  let sub = fresh_ctx ~id:"sub" ~port in
  let pub = fresh_ctx ~id:"pub" ~port in
  let ctxs = [ sub; pub ] in
  let seq_of ob =
    match Obvent.get ob "seq" with Value.Int s -> s | _ -> -1
  in
  let subscribe_ge k =
    let got = ref [] in
    let expr = Tpbs_filter.Expr.(Binop (Ge, getter [ "getSeq" ], int k)) in
    let s =
      Pubsub.Process.subscribe sub.proc ~param:"TQuote"
        ~filter:(Tpbs_core.Fspec.tree expr)
        (fun ob -> got := seq_of ob :: !got)
    in
    Pubsub.Subscription.activate s;
    Engine.run sub.engine;
    ignore (Client.poll sub.client ~timeout_ms:10);
    (s, got)
  in
  (* the wide sub first, then two narrower siblings it entails *)
  let s_all, got_all = subscribe_ge 0 in
  let _s_mid, got_mid = subscribe_ge 10 in
  let _s_high, got_high = subscribe_ge 20 in
  let n1 = 25 in
  for i = 0 to n1 - 1 do
    publish_quote pub ~origin:"pub" i
  done;
  let batch1_in () =
    List.length !got_all = n1
    && List.length !got_mid = n1 - 10
    && List.length !got_high = n1 - 20
  in
  Alcotest.(check bool) "first batch fully delivered" true
    (spin ~ctxs ~until:batch1_in ~for_ms:10000 ());
  (* drop the coverer: the narrower subs must keep receiving, which
     under covering requires the broker-side promotion sweep *)
  Pubsub.Subscription.deactivate s_all;
  Engine.run sub.engine;
  ignore (Client.poll sub.client ~timeout_ms:10);
  let n2 = 10 in
  for i = n1 to n1 + n2 - 1 do
    publish_quote pub ~origin:"pub" i
  done;
  let batch2_in () =
    List.length !got_mid = n1 - 10 + n2 && List.length !got_high = n1 - 20 + n2
  in
  Alcotest.(check bool) "promoted subs keep receiving" true
    (spin ~ctxs ~until:batch2_in ~for_ms:10000 ());
  let r = (List.rev !got_all, List.rev !got_mid, List.rev !got_high) in
  List.iter (fun c -> Client.close c.client) ctxs;
  r

let test_e2e_covering_equivalence () =
  let on = run_covering_scenario ~covering:true in
  let off = run_covering_scenario ~covering:false in
  Alcotest.(check (triple (list int) (list int) (list int)))
    "same per-subscription deliveries with covering on and off" off on

let test_backoff_schedule () =
  let p = Backoff.default in
  (* No jitter at u = 0.5: the pure exponential, capped at 10 s. *)
  Alcotest.(check (list int)) "exponential then capped"
    [ 100; 200; 400; 800; 1600; 3200; 6400; 10000; 10000 ]
    (List.map
       (fun attempt -> Backoff.delay_ms p ~attempt ~u:0.5)
       [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ]);
  (* Jitter spans ±20% of the capped delay. *)
  Alcotest.(check int) "low draw" 80 (Backoff.delay_ms p ~attempt:0 ~u:0.0);
  Alcotest.(check bool) "high draw" true
    (Backoff.delay_ms p ~attempt:0 ~u:0.9999 >= 119);
  for attempt = 0 to 12 do
    let d = Backoff.delay_ms p ~attempt ~u:0.37 in
    Alcotest.(check bool) "never negative" true (d >= 0);
    Alcotest.(check bool) "never above cap + jitter" true
      (d
      <= int_of_float
           (float_of_int p.Backoff.max_delay_ms *. (1. +. p.Backoff.jitter)))
  done

let test_reconnect_with_backoff () =
  (* One client, a broker that dies and (mid-loop) comes back: the
     backoff loop must wait per the schedule, succeed as soon as the
     broker returns, and — once the port is truly dead — give up after
     exactly [max_retries] waits. *)
  Trace.set_ambient (Trace.create ());
  let listen_fd = Broker.listen_socket ~host:"127.0.0.1" ~port:0 in
  let port = bound_port listen_fd in
  let bp = fork_broker ~listen_fd () in
  let ctx = fresh_ctx ~id:"backoff" ~port in
  kill_broker bp;
  let policy =
    { Backoff.default with base_ms = 10; max_delay_ms = 40; jitter = 0.;
      max_retries = 4 }
  in
  (* Phase 1: the parent still holds the listening socket, so dials sit
     in the backlog and the handshake times out. The second wait brings
     a replacement broker up on the same fd — the next attempt lands. *)
  let slept = ref [] in
  let bp2 = ref None in
  let sleep ms =
    slept := ms :: !slept;
    if List.length !slept = 2 then bp2 := Some (fork_broker ~listen_fd ())
  in
  Alcotest.(check bool) "recovers once the broker returns" true
    (Client.reconnect_with_backoff ~policy ~sleep ~rand:(fun () -> 0.5)
       ~timeout_ms:300 ctx.client);
  Alcotest.(check (list int)) "two scheduled waits" [ 10; 20 ]
    (List.rev !slept);
  Alcotest.(check bool) "client is back" true (Client.connected ctx.client);
  (match !bp2 with Some bp -> quit_broker bp | None -> ());
  Unix.close listen_fd;
  (* Phase 2: nothing listens any more — every attempt is refused, the
     loop walks the whole capped schedule and gives up. *)
  slept := [];
  Alcotest.(check bool) "gives up on a dead port" false
    (Client.reconnect_with_backoff ~policy
       ~sleep:(fun ms -> slept := ms :: !slept)
       ~rand:(fun () -> 0.5) ~timeout_ms:200 ctx.client);
  Alcotest.(check (list int)) "waits follow the capped schedule"
    [ 10; 20; 40; 40 ] (List.rev !slept);
  Alcotest.(check int) "every wait counted" 6
    (Trace.Counter.value
       (Trace.counter (Trace.ambient ()) "transport.backoff_waits"));
  Client.close ctx.client

(* --- encode-once shared frames and zero-copy views -------------------- *)

let slice_of ~buf ~off ~len = { Proto.sl_buf = buf; sl_off = off; sl_len = len }

(* The shared-frame encoder against its oracle: byte-identical to the
   per-session path for any origin/pseq/cls/envelope, including
   envelopes handed over as proper slices of a larger buffer. *)
let test_preframed_oracle =
  QCheck.Test.make ~name:"encode_deliver = frame (encode (Deliver ...))"
    ~count:300
    QCheck.(
      quad small_string small_nat small_string
        (triple
           (string_of_size (Gen.int_range 0 300))
           (int_bound 16) (int_bound 16)))
    (fun (origin, pseq, cls, (env, padl, padr)) ->
      let buf = String.make padl 'L' ^ env ^ String.make padr 'R' in
      let slice = slice_of ~buf ~off:padl ~len:(String.length env) in
      let pf = Proto.encode_deliver ~origin ~pseq ~cls slice in
      let oracle =
        Frame.frame (Proto.encode (Deliver { origin; pseq; cls; envelope = env }))
      in
      Frame.preframed_bytes pf = oracle
      && Frame.preframed_length pf = String.length oracle - Frame.header_bytes)

(* pop_view and pop must agree frame for frame under arbitrary feed
   chunking — same payloads, same order, same Await points. *)
let test_decoder_view_agrees_with_pop =
  QCheck.Test.make ~name:"decoder pop_view agrees with pop" ~count:200
    QCheck.(
      pair
        (small_list (string_of_size (Gen.int_range 0 80)))
        (list_of_size (Gen.int_range 1 16) (int_bound 40)))
    (fun (payloads, cuts) ->
      let stream = String.concat "" (List.map Frame.frame payloads) in
      let d_copy = Frame.Decoder.create () in
      let d_view = Frame.Decoder.create () in
      let got_copy = ref [] and got_view = ref [] in
      let drain_copy () =
        let rec go () =
          match Frame.Decoder.pop d_copy with
          | Frame.Decoder.Frame s ->
              got_copy := s :: !got_copy;
              go ()
          | Frame.Decoder.Await -> ()
          | Frame.Decoder.Corrupt m -> QCheck.Test.fail_reportf "copy corrupt: %s" m
        in
        go ()
      in
      let drain_view () =
        let rec go () =
          match Frame.Decoder.pop_view d_view with
          | Frame.Decoder.V_frame (buf, off, len) ->
              (* views die at the next feed: materialize now *)
              got_view := String.sub buf off len :: !got_view;
              go ()
          | Frame.Decoder.V_await -> ()
          | Frame.Decoder.V_corrupt m ->
              QCheck.Test.fail_reportf "view corrupt: %s" m
        in
        go ()
      in
      let pos = ref 0 in
      let feed len =
        let len = min len (String.length stream - !pos) in
        Frame.Decoder.feed d_copy stream !pos len;
        Frame.Decoder.feed d_view stream !pos len;
        pos := !pos + len;
        drain_copy ();
        drain_view ()
      in
      List.iter feed cuts;
      feed (String.length stream - !pos);
      List.rev !got_copy = payloads && !got_copy = !got_view)

let test_decoder_view_corrupt_matches_pop () =
  (* A flipped payload byte condemns both forms identically, and both
     stay condemned. *)
  let mk () =
    let f = Bytes.of_string (Frame.frame "abcdef" ^ Frame.frame "ghijkl") in
    Bytes.set f Frame.header_bytes 'X';
    Bytes.to_string f
  in
  let d_copy = Frame.Decoder.create () in
  let d_view = Frame.Decoder.create () in
  Frame.Decoder.feed_string d_copy (mk ());
  Frame.Decoder.feed_string d_view (mk ());
  let copy_msg =
    match Frame.Decoder.pop d_copy with
    | Frame.Decoder.Corrupt m -> m
    | _ -> Alcotest.fail "pop must report corruption"
  in
  (match Frame.Decoder.pop_view d_view with
  | Frame.Decoder.V_corrupt m ->
      Alcotest.(check string) "same condemnation" copy_msg m
  | _ -> Alcotest.fail "pop_view must report corruption");
  Frame.Decoder.feed_string d_view (Frame.frame "late");
  (match Frame.Decoder.pop_view d_view with
  | Frame.Decoder.V_corrupt _ -> ()
  | _ -> Alcotest.fail "condemnation must be sticky through pop_view")

let test_decode_view_agrees_with_decode () =
  (* Over every protocol message and every garbage sample, the in-place
     view parse and the full decode tell the same story — also when the
     payload sits mid-buffer. *)
  let agree s =
    let pad = "\xaa\xbb\xcc" in
    let padded = pad ^ s ^ pad in
    List.iter
      (fun (buf, off) ->
        match
          ( Proto.decode s,
            Proto.decode_view buf ~off ~len:(String.length s) )
        with
        | None, Proto.V_none -> ()
        | Some (Proto.Pub { pseq; cls; envelope }),
          Proto.V_pub { pseq = p; cls = c; envelope = e } ->
            Alcotest.(check bool) "pub fields" true (p = pseq && c = cls);
            Alcotest.(check string) "pub envelope" envelope
              (Proto.slice_to_string e)
        | Some (Proto.Deliver { origin; pseq; cls; envelope }),
          Proto.V_deliver { origin = o; pseq = p; cls = c; envelope = e } ->
            Alcotest.(check bool) "deliver fields" true
              (o = origin && p = pseq && c = cls);
            Alcotest.(check string) "deliver envelope" envelope
              (Proto.slice_to_string e)
        | Some m, Proto.V_msg m' ->
            Alcotest.(check bool) (Proto.tag m) true (m = m')
        | _, _ -> Alcotest.fail "decode_view disagrees with decode")
      [ (s, 0); (padded, String.length pad) ]
  in
  List.iter (fun m -> agree (Proto.encode m)) all_msgs;
  List.iter agree
    [ ""; "\xff\xff\xff"; Codec.encode (Value.Str "not a message");
      Codec.encode (Value.List [ Value.Str "unknown-tag"; Value.Int 1 ]);
      Codec.encode (Value.List [ Value.Str "pub"; Value.Str "wrong shape" ]) ]

let test_chunk_queue_order_under_partial_writes () =
  (* Interleave small coalesced messages with large by-reference shared
     frames through a socketpair whose send buffer is clamped small, so
     flush hits partial writes and blocked chunks — the peer must see
     every frame, in enqueue order, bit-exact. *)
  Trace.set_ambient (Trace.create ());
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  Unix.setsockopt_int a SO_SNDBUF 4096;
  let conn = Conn.create ~max_frame:(1 lsl 20) a in
  let expected = ref [] in
  for i = 0 to 23 do
    if i mod 3 = 0 then begin
      (* unique big envelope: takes the chunk-queue reference path *)
      let env = String.init 6000 (fun j -> Char.chr ((i + j) land 0xff)) in
      let pf =
        Proto.encode_deliver ~origin:"pub" ~pseq:i ~cls:"TQuote"
          (slice_of ~buf:env ~off:0 ~len:(String.length env))
      in
      Conn.send_preframed conn pf;
      let s = Frame.preframed_bytes pf in
      expected :=
        String.sub s Frame.header_bytes (Frame.preframed_length pf)
        :: !expected
    end
    else begin
      let m = Proto.Credit { n = i } in
      Conn.send conn m;
      expected := Proto.encode m :: !expected
    end
  done;
  let expected = List.rev !expected in
  let dec = Frame.Decoder.create ~max_frame:(1 lsl 20) () in
  let got = ref [] in
  let rbuf = Bytes.create 777 in
  let read_some () =
    match Unix.read b rbuf 0 (Bytes.length rbuf) with
    | 0 -> false
    | k ->
        Frame.Decoder.feed_string dec (Bytes.sub_string rbuf 0 k);
        let rec drain () =
          match Frame.Decoder.pop dec with
          | Frame.Decoder.Frame s ->
              got := s :: !got;
              drain ()
          | Frame.Decoder.Await -> ()
          | Frame.Decoder.Corrupt m -> Alcotest.failf "corrupt stream: %s" m
        in
        drain ();
        true
  in
  let rec pump guard =
    if guard = 0 then Alcotest.fail "flush never drained";
    match Conn.flush conn with
    | `Ok -> ()
    | `Blocked ->
        ignore (read_some ());
        pump (guard - 1)
    | `Closed m -> Alcotest.failf "writer closed: %s" m
  in
  pump 10_000;
  Alcotest.(check int) "nothing left queued" 0 (Conn.pending_bytes conn);
  Unix.shutdown a Unix.SHUTDOWN_SEND;
  while read_some () do
    ()
  done;
  Alcotest.(check int) "every frame arrived" (List.length expected)
    (List.length !got);
  Alcotest.(check bool) "in order, bit-exact" true (List.rev !got = expected);
  Unix.close a;
  Unix.close b

let test_syscall_stats_balance () =
  (* The ambient transport.read_syscalls / write_syscalls counters must
     equal the sum of the per-connection stats over every live
     connection in the registry's lifetime. *)
  Trace.set_ambient (Trace.create ());
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  let ca = Conn.create a and cb = Conn.create b in
  let wait_readable fd = ignore (Unix.select [ fd ] [] [] 2.0) in
  let pump_across src dst n =
    for i = 1 to n do
      Conn.send src (Proto.Credit { n = i })
    done;
    (match Conn.flush src with
    | `Ok -> ()
    | _ -> Alcotest.fail "flush did not drain");
    let seen = ref 0 in
    while !seen < n do
      wait_readable (Conn.fd dst);
      (match Conn.recv dst with
      | `Ok -> ()
      | `Blocked -> ()
      | `Closed m -> Alcotest.failf "peer closed: %s" m);
      let rec drain () =
        match Conn.pop dst with
        | Conn.Msg _ ->
            incr seen;
            drain ()
        | Conn.Nothing -> ()
        | Conn.Bad m -> Alcotest.failf "bad frame: %s" m
      in
      drain ()
    done
  in
  pump_across ca cb 5;
  pump_across cb ca 3;
  let sa = Conn.stats ca and sb = Conn.stats cb in
  let ambient name =
    Trace.Counter.value (Trace.counter (Trace.ambient ()) name)
  in
  Alcotest.(check int) "write syscalls balance"
    (sa.Conn.write_syscalls + sb.Conn.write_syscalls)
    (ambient "transport.write_syscalls");
  Alcotest.(check int) "read syscalls balance"
    (sa.Conn.read_syscalls + sb.Conn.read_syscalls)
    (ambient "transport.read_syscalls");
  Alcotest.(check int) "frames sent balance"
    (sa.Conn.frames_sent + sb.Conn.frames_sent)
    (ambient "transport.frames_sent");
  Alcotest.(check int) "frames received balance"
    (sa.Conn.frames_received + sb.Conn.frames_received)
    (ambient "transport.frames_received");
  Alcotest.(check int) "bytes sent balance"
    (sa.Conn.bytes_sent + sb.Conn.bytes_sent)
    (ambient "transport.bytes_sent");
  Alcotest.(check bool) "read syscalls happened" true
    (ambient "transport.read_syscalls" > 0);
  Conn.close ca;
  Conn.close cb

(* In-process broker with raw connections: the encode-once ledger.
   [shared_frames] on, K subscribers and P publishes cost exactly P
   Deliver encodes and P*K shared enqueues; off, P*K encodes. *)
let run_fanout_counters ~shared ~subs ~pubs =
  Trace.set_ambient (Trace.create ());
  let config = { instant_config with Broker.shared_frames = shared } in
  let broker = Broker.create ~config ~port:0 () in
  let port = Broker.port broker in
  let dial id window =
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port));
    let c = Conn.create fd in
    Conn.send c (Proto.Hello { client = id; window });
    c
  in
  let sub_conns =
    List.init subs (fun k ->
        ignore (Broker.poll broker ~timeout_ms:0 ());
        let c = dial (Printf.sprintf "s%d" k) 1_000_000 in
        Conn.send c (Proto.Sub { sid = k; param = "TQuote"; filter = Value.Null });
        ignore (Conn.flush c);
        c)
  in
  let pub = dial "pub" 0 in
  Conn.send pub (Proto.Advertise { cls = "TQuote"; supers = [] });
  ignore (Conn.flush pub);
  let envelope i =
    Codec.encode
      (Value.List
         [ Value.Int 0; Value.Int 1; Value.Int i;
           Value.Str (Codec.encode (Value.obj "TQuote" [ ("seq", Value.Int i) ]))
         ])
  in
  let delivered = ref 0 in
  let credit = ref 0 and sent = ref 0 in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while !delivered < pubs * subs && Unix.gettimeofday () < deadline do
    ignore (Broker.poll broker ~timeout_ms:0 ());
    while !credit > 0 && !sent < pubs do
      Conn.send pub (Proto.Pub { pseq = !sent; cls = "TQuote"; envelope = envelope !sent });
      incr sent;
      decr credit
    done;
    ignore (Conn.flush pub);
    (match Conn.recv pub with
    | `Ok ->
        let rec drain () =
          match Conn.pop pub with
          | Conn.Msg (Proto.Welcome { window }) ->
              credit := window;
              drain ()
          | Conn.Msg (Proto.Credit { n }) ->
              credit := !credit + n;
              drain ()
          | Conn.Msg _ -> drain ()
          | Conn.Nothing -> ()
          | Conn.Bad m -> Alcotest.failf "publisher: %s" m
        in
        drain ()
    | `Blocked -> ()
    | `Closed m -> Alcotest.failf "publisher closed: %s" m);
    List.iter
      (fun c ->
        match Conn.recv c with
        | `Ok ->
            let rec drain () =
              match Conn.pop c with
              | Conn.Msg (Proto.Deliver _) ->
                  incr delivered;
                  drain ()
              | Conn.Msg _ -> drain ()
              | Conn.Nothing -> ()
              | Conn.Bad m -> Alcotest.failf "subscriber: %s" m
            in
            drain ()
        | `Blocked -> ()
        | `Closed m -> Alcotest.failf "subscriber closed: %s" m)
      sub_conns
  done;
  Alcotest.(check int) "all deliveries arrived" (pubs * subs) !delivered;
  List.iter Conn.close sub_conns;
  Conn.close pub;
  Broker.stop broker;
  let v name = Trace.Counter.value (Trace.counter (Trace.ambient ()) name) in
  (v "transport.deliver_encodes", v "transport.fanout_shared")

let test_broker_encode_once_counters () =
  let encodes, shared_enqueues =
    run_fanout_counters ~shared:true ~subs:4 ~pubs:10
  in
  Alcotest.(check int) "one encode per publish, independent of K" 10 encodes;
  Alcotest.(check int) "every enqueue shares the frame" 40 shared_enqueues;
  let encodes, shared_enqueues =
    run_fanout_counters ~shared:false ~subs:4 ~pubs:10
  in
  Alcotest.(check int) "baseline pays one encode per subscriber" 40 encodes;
  Alcotest.(check int) "baseline never shares" 0 shared_enqueues

let suite =
  ( "transport",
    [ Alcotest.test_case "framing roundtrip" `Quick test_frame_roundtrip;
      Alcotest.test_case "framing byte-at-a-time" `Quick test_frame_dribble;
      Alcotest.test_case "framing all split points" `Quick
        test_frame_all_split_points;
      Alcotest.test_case "framing truncated = Await" `Quick
        test_frame_truncated_is_await;
      Alcotest.test_case "framing corrupt CRC is sticky" `Quick
        test_frame_corrupt_crc_sticky;
      Alcotest.test_case "framing oversize/negative length" `Quick
        test_frame_oversize_and_negative_length;
      Alcotest.test_case "framing lying length" `Quick
        test_frame_corrupt_length_of_valid_frame;
      Alcotest.test_case "proto roundtrips" `Quick test_proto_roundtrip;
      Alcotest.test_case "proto rejects garbage" `Quick
        test_proto_rejects_garbage;
      Alcotest.test_case "e2e: two subscribers, one broker" `Quick
        test_e2e_two_clients;
      Alcotest.test_case "e2e: exactly-once across broker restart" `Quick
        test_e2e_broker_restart_exactly_once;
      Alcotest.test_case "e2e: corrupt bytes condemn only their connection"
        `Quick test_e2e_corrupt_bytes_condemn_connection;
      Alcotest.test_case "e2e: covering on/off delivers identically" `Quick
        test_e2e_covering_equivalence;
      Alcotest.test_case "backoff schedule is exponential, capped, jittered"
        `Quick test_backoff_schedule;
      Alcotest.test_case "reconnect with backoff: recover, then give up"
        `Quick test_reconnect_with_backoff;
      QCheck_alcotest.to_alcotest test_preframed_oracle;
      QCheck_alcotest.to_alcotest test_decoder_view_agrees_with_pop;
      Alcotest.test_case "decoder view corruption matches pop" `Quick
        test_decoder_view_corrupt_matches_pop;
      Alcotest.test_case "decode_view agrees with decode" `Quick
        test_decode_view_agrees_with_decode;
      Alcotest.test_case "chunk queue keeps order under partial writes"
        `Quick test_chunk_queue_order_under_partial_writes;
      Alcotest.test_case "ambient syscall counters balance per-conn stats"
        `Quick test_syscall_stats_balance;
      Alcotest.test_case "broker fan-out encodes once per publish" `Quick
        test_broker_encode_once_counters ] )
