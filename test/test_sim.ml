module Engine = Tpbs_sim.Engine
module Net = Tpbs_sim.Net
module Rng = Tpbs_sim.Rng
module Metric = Tpbs_sim.Metric
module Stable = Tpbs_sim.Stable

let test_engine_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:30 (fun () -> log := 30 :: !log);
  Engine.schedule e ~delay:10 (fun () -> log := 10 :: !log);
  Engine.schedule e ~delay:20 (fun () -> log := 20 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "ascending times" [ 10; 20; 30 ] (List.rev !log);
  Alcotest.(check int) "clock advanced" 30 (Engine.now e)

let test_engine_fifo_ties () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Engine.schedule e ~delay:5 (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "scheduling order preserved on ties"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (List.rev !log)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:10 (fun () ->
      log := "a" :: !log;
      Engine.schedule e ~delay:5 (fun () -> log := "b" :: !log));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "a"; "b" ] (List.rev !log);
  Alcotest.(check int) "final clock" 15 (Engine.now e)

let test_engine_run_until () =
  let e = Engine.create () in
  let count = ref 0 in
  Engine.every e ~period:10 (fun () ->
      incr count;
      true);
  Engine.run ~until:95 e;
  Alcotest.(check int) "9 periods in 95 ticks" 9 !count;
  Alcotest.(check int) "clock at horizon" 95 (Engine.now e);
  Alcotest.(check bool) "work remains queued" true (Engine.pending e > 0)

let test_engine_every_stops () =
  let e = Engine.create () in
  let count = ref 0 in
  Engine.every e ~period:10 (fun () ->
      incr count;
      !count < 3);
  Engine.run e;
  Alcotest.(check int) "stopped after 3" 3 !count

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  let seq_a = List.init 50 (fun _ -> Rng.int a 1000) in
  let seq_b = List.init 50 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same sequence" seq_a seq_b;
  let c = Rng.create 8 in
  let seq_c = List.init 50 (fun _ -> Rng.int c 1000) in
  Alcotest.(check bool) "different seed differs" true (seq_a <> seq_c)

let test_rng_bounds () =
  let r = Rng.create 1 in
  for _ = 1 to 1000 do
    let x = Rng.int r 10 in
    if x < 0 || x >= 10 then Alcotest.fail "int out of bounds";
    let f = Rng.float r 2.0 in
    if f < 0. || f >= 2.0 then Alcotest.fail "float out of bounds"
  done

let test_rng_sample () =
  let r = Rng.create 3 in
  let s = Rng.sample_without_replacement r 5 10 in
  Alcotest.(check int) "five samples" 5 (List.length s);
  Alcotest.(check int) "distinct" 5 (List.length (List.sort_uniq Int.compare s));
  List.iter (fun x -> if x < 0 || x >= 10 then Alcotest.fail "out of range") s;
  Alcotest.(check int) "k >= n returns all" 10
    (List.length (Rng.sample_without_replacement r 99 10))

let test_net_basic_delivery () =
  let e = Engine.create () in
  let net = Net.create e in
  let a = Net.add_node net and b = Net.add_node net in
  let inbox = ref [] in
  Net.set_handler net b ~port:"app" (fun src payload ->
      inbox := (src, payload) :: !inbox);
  Net.send net ~src:a ~dst:b ~port:"app" "hello";
  Engine.run e;
  Alcotest.(check (list (pair int string))) "delivered" [ a, "hello" ] !inbox;
  let s = Net.stats net in
  Alcotest.(check int) "one sent" 1 s.Net.sent;
  Alcotest.(check int) "one delivered" 1 s.Net.delivered;
  Alcotest.(check int) "bytes" 5 s.Net.bytes_delivered

let test_net_loss () =
  let e = Engine.create ~seed:11 () in
  let net = Net.create ~config:{ Net.default_config with loss = 0.5 } e in
  let a = Net.add_node net and b = Net.add_node net in
  let got = ref 0 in
  Net.set_handler net b ~port:"app" (fun _ _ -> incr got);
  for _ = 1 to 200 do
    Net.send net ~src:a ~dst:b ~port:"app" "x"
  done;
  Engine.run e;
  Alcotest.(check bool) "roughly half lost" true (!got > 60 && !got < 140);
  let s = Net.stats net in
  Alcotest.(check int) "loss accounted" 200 (s.Net.delivered + s.Net.dropped_loss)

let test_net_crash_recover () =
  let e = Engine.create () in
  let net = Net.create e in
  let a = Net.add_node net and b = Net.add_node net in
  let got = ref 0 in
  Net.set_handler net b ~port:"app" (fun _ _ -> incr got);
  Net.crash net b;
  Net.send net ~src:a ~dst:b ~port:"app" "lost";
  Engine.run e;
  Alcotest.(check int) "crashed node gets nothing" 0 !got;
  Net.recover net b;
  Net.send net ~src:a ~dst:b ~port:"app" "after";
  Engine.run e;
  Alcotest.(check int) "recovered node receives" 1 !got;
  Alcotest.(check int) "incarnation bumped" 1 (Net.incarnation net b);
  (* Crashed sources cannot send. *)
  Net.crash net a;
  Net.send net ~src:a ~dst:b ~port:"app" "never";
  Engine.run e;
  Alcotest.(check int) "crashed source sends nothing" 1 !got

let test_net_in_flight_to_crashed_lost () =
  let e = Engine.create () in
  let net = Net.create e in
  let a = Net.add_node net and b = Net.add_node net in
  let got = ref 0 in
  Net.set_handler net b ~port:"app" (fun _ _ -> incr got);
  Net.send net ~src:a ~dst:b ~port:"app" "in-flight";
  (* Crash while the message is in the air. *)
  Engine.schedule e ~delay:1 (fun () -> Net.crash net b);
  Engine.run e;
  Alcotest.(check int) "in-flight message lost" 0 !got;
  Alcotest.(check int) "accounted as crash drop" 1
    (Net.stats net).Net.dropped_crash

let test_net_partition () =
  let e = Engine.create () in
  let net = Net.create e in
  let a = Net.add_node net and b = Net.add_node net and c = Net.add_node net in
  let got_b = ref 0 and got_c = ref 0 in
  Net.set_handler net b ~port:"app" (fun _ _ -> incr got_b);
  Net.set_handler net c ~port:"app" (fun _ _ -> incr got_c);
  Net.partition net [ [ a; b ]; [ c ] ];
  Net.send net ~src:a ~dst:b ~port:"app" "same side";
  Net.send net ~src:a ~dst:c ~port:"app" "other side";
  Engine.run e;
  Alcotest.(check int) "same side delivered" 1 !got_b;
  Alcotest.(check int) "across partition dropped" 0 !got_c;
  Net.heal net;
  Net.send net ~src:a ~dst:c ~port:"app" "healed";
  Engine.run e;
  Alcotest.(check int) "healed" 1 !got_c

let test_schedule_on_incarnation () =
  let e = Engine.create () in
  let net = Net.create e in
  let a = Net.add_node net in
  let fired = ref 0 in
  Net.schedule_on net a ~delay:10 (fun () -> incr fired);
  Net.schedule_on net a ~delay:50 (fun () -> incr fired);
  (* Crash+recover between the two timers: the second must not fire. *)
  Engine.schedule e ~delay:20 (fun () ->
      Net.crash net a;
      Net.recover net a);
  Engine.run e;
  Alcotest.(check int) "only pre-crash timer fired" 1 !fired

let test_every_jitter_bounds () =
  let e = Engine.create ~seed:4 () in
  let times = ref [] in
  let count = ref 0 in
  Engine.every e ~period:100 ~jitter:30 (fun () ->
      times := Engine.now e :: !times;
      incr count;
      !count < 50);
  Engine.run e;
  let rec gaps = function
    | a :: (b :: _ as rest) -> (a - b) :: gaps rest
    | _ -> []
  in
  List.iter
    (fun gap ->
      if gap < 70 || gap > 130 then
        Alcotest.failf "period %d outside jitter bounds" gap)
    (gaps !times)

let test_partition_heal_in_flight () =
  let e = Engine.create () in
  let net = Net.create e in
  let a = Net.add_node net and b = Net.add_node net in
  let got = ref 0 in
  Net.set_handler net b ~port:"p" (fun _ _ -> incr got);
  (* Sent while connected, but partitioned at delivery time: dropped. *)
  Net.send net ~src:a ~dst:b ~port:"p" "x";
  Engine.schedule e ~delay:1 (fun () -> Net.partition net [ [ a ]; [ b ] ]);
  Engine.run e;
  Alcotest.(check int) "partitioned at delivery: dropped" 0 !got;
  (* Sent while partitioned, healed before delivery: delivered. *)
  Net.send net ~src:a ~dst:b ~port:"p" "y";
  Engine.schedule e ~delay:1 (fun () -> Net.heal net);
  Engine.run e;
  Alcotest.(check int) "healed at delivery: delivered" 1 !got

let test_net_stats_balance () =
  (* Regression: a message arriving at a live, reachable node with no
     handler on the port used to vanish without a trace — [sent] never
     balanced against the outcome buckets. Mix all four drop causes
     with deliveries and check the books. *)
  let e = Engine.create ~seed:3 () in
  let net = Net.create ~config:{ Net.default_config with loss = 0.3 } e in
  let a = Net.add_node net and b = Net.add_node net and c = Net.add_node net in
  let got = ref 0 in
  Net.set_handler net b ~port:"app" (fun _ _ -> incr got);
  for _ = 1 to 50 do
    Net.send net ~src:a ~dst:b ~port:"app" "handled"
  done;
  (* No handler bound anywhere on node [c], nor on this port of [b]. *)
  for _ = 1 to 20 do
    Net.send net ~src:a ~dst:c ~port:"app" "nobody home";
    Net.send net ~src:a ~dst:b ~port:"other" "wrong port"
  done;
  Engine.run e;
  Net.crash net c;
  Net.send net ~src:a ~dst:c ~port:"app" "to the dead";
  Engine.run e;
  let s = Net.stats net in
  Alcotest.(check bool) "no-handler drops counted" true
    (s.Net.dropped_no_handler > 0);
  Alcotest.(check int) "every send lands in exactly one bucket" s.Net.sent
    (s.Net.delivered + s.Net.dropped_loss + s.Net.dropped_crash
    + s.Net.dropped_partition + s.Net.dropped_no_handler);
  Alcotest.(check int) "handled messages delivered" !got s.Net.delivered

let test_rng_exponential_and_stddev () =
  let r = Rng.create 6 in
  let m = Metric.create () in
  for _ = 1 to 2000 do
    let x = Rng.exponential r 50. in
    if x < 0. then Alcotest.fail "negative exponential";
    Metric.record m x
  done;
  Alcotest.(check bool) "mean near 50" true
    (Metric.mean m > 35. && Metric.mean m < 65.);
  Alcotest.(check bool) "stddev positive" true (Metric.stddev m > 10.)

let test_metric () =
  let m = Metric.create () in
  List.iter (Metric.record m) [ 5.; 1.; 3.; 2.; 4. ];
  Alcotest.(check int) "count" 5 (Metric.count m);
  Alcotest.(check (float 1e-9)) "mean" 3. (Metric.mean m);
  Alcotest.(check (float 1e-9)) "min" 1. (Metric.min m);
  Alcotest.(check (float 1e-9)) "max" 5. (Metric.max m);
  Alcotest.(check (float 1e-9)) "median" 3. (Metric.percentile m 0.5);
  Alcotest.(check (float 1e-9)) "p99 = max here" 5. (Metric.percentile m 0.99);
  Metric.record m 100.;
  Alcotest.(check (float 1e-9)) "still sorted after insert" 100. (Metric.max m);
  let empty = Metric.create () in
  Alcotest.(check (float 0.)) "empty mean" 0. (Metric.mean empty)

let test_stable () =
  let s = Stable.create () in
  Stable.put s "a:1" "x";
  Stable.put s "a:2" "y";
  Stable.put s "b:1" "z";
  Alcotest.(check (option string)) "get" (Some "y") (Stable.get s "a:2");
  Alcotest.(check (list string)) "prefix scan" [ "a:1"; "a:2" ]
    (Stable.keys_with_prefix s "a:");
  Stable.delete s "a:1";
  Alcotest.(check (option string)) "deleted" None (Stable.get s "a:1");
  Alcotest.(check int) "size" 2 (Stable.size s)

let test_sim_determinism () =
  (* Two identical simulations produce identical delivery traces. *)
  let run_once () =
    let e = Engine.create ~seed:99 () in
    let net =
      Net.create ~config:{ latency = 500; jitter = 400; loss = 0.2 } e
    in
    let a = Net.add_node net and b = Net.add_node net in
    let log = ref [] in
    Net.set_handler net b ~port:"p" (fun _ payload ->
        log := (Engine.now e, payload) :: !log);
    for i = 1 to 50 do
      Engine.schedule e ~delay:(i * 10) (fun () ->
          Net.send net ~src:a ~dst:b ~port:"p" (string_of_int i))
    done;
    Engine.run e;
    List.rev !log
  in
  Alcotest.(check (list (pair int string)))
    "bit-for-bit reproducible" (run_once ()) (run_once ())

let suite =
  ( "sim",
    [ Alcotest.test_case "engine: time order" `Quick test_engine_time_order;
      Alcotest.test_case "engine: FIFO on ties" `Quick test_engine_fifo_ties;
      Alcotest.test_case "engine: nested scheduling" `Quick
        test_engine_nested_scheduling;
      Alcotest.test_case "engine: run until horizon" `Quick
        test_engine_run_until;
      Alcotest.test_case "engine: every stops on false" `Quick
        test_engine_every_stops;
      Alcotest.test_case "rng: determinism" `Quick test_rng_determinism;
      Alcotest.test_case "rng: bounds" `Quick test_rng_bounds;
      Alcotest.test_case "rng: sampling" `Quick test_rng_sample;
      Alcotest.test_case "net: basic delivery" `Quick test_net_basic_delivery;
      Alcotest.test_case "net: loss model" `Quick test_net_loss;
      Alcotest.test_case "net: crash and recover" `Quick
        test_net_crash_recover;
      Alcotest.test_case "net: in-flight to crashed lost" `Quick
        test_net_in_flight_to_crashed_lost;
      Alcotest.test_case "net: partitions" `Quick test_net_partition;
      Alcotest.test_case "net: stats balance" `Quick test_net_stats_balance;
      Alcotest.test_case "net: incarnation-guarded timers" `Quick
        test_schedule_on_incarnation;
      Alcotest.test_case "metric summaries" `Quick test_metric;
      Alcotest.test_case "stable storage" `Quick test_stable;
      Alcotest.test_case "whole-sim determinism" `Quick test_sim_determinism;
      Alcotest.test_case "every: jitter bounds" `Quick
        test_every_jitter_bounds;
      Alcotest.test_case "partition: delivery-time semantics" `Quick
        test_partition_heal_in_flight;
      Alcotest.test_case "rng exponential + metric stddev" `Quick
        test_rng_exponential_and_stddev ]
  )
