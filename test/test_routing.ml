(* The per-class routing index (Routing) and the single-decode delivery
   path it feeds: equivalence with the pre-index linear scan,
   clone-per-subscriber identity on the gated path, invalidation on
   (de)activation, late type declarations, and the once-per-event
   accounting fixes. *)

open Helpers
module Engine = Tpbs_sim.Engine
module Net = Tpbs_sim.Net
module Codec = Tpbs_serial.Codec
module Pubsub = Tpbs_core.Pubsub
module Routing = Tpbs_core.Routing
module Fspec = Tpbs_core.Fspec
module Domain = Pubsub.Domain
module Process = Pubsub.Process
module Subscription = Pubsub.Subscription

let timely_registry () =
  let reg = stock_registry () in
  Registry.declare_class reg ~name:"Tick" ~implements:[ "Timely" ]
    ~attrs:
      [ "symbol", Vtype.Tstring; "birth", Vtype.Tint;
        "timeToLive", Vtype.Tint ]
    ();
  reg

let setup ?(n = 4) ?(config = Net.default_config) ?(seed = 42) ?tx_interval
    ?(registry = stock_registry) () =
  let reg = registry () in
  let engine = Engine.create ~seed () in
  let net = Net.create ~config engine in
  let domain = Domain.create ?tx_interval reg net in
  let procs =
    Array.init n (fun _ -> Process.create domain (Net.add_node net))
  in
  reg, engine, net, domain, procs

let quote_of reg ?(cls = "StockQuote") ?(company = "Telco") ?(price = 80.)
    ?(amount = 10) () =
  Obvent.make reg cls
    [ "company", Value.Str company; "price", Value.Float price;
      "amount", Value.Int amount ]

let collect_handler log = fun obvent -> log := obvent :: !log

(* --- pure index properties ------------------------------------------- *)

(* Random chain/tree lattices: class Ci extends a random earlier class
   (or roots at Obvent). *)
let gen_lattice =
  let open QCheck.Gen in
  int_range 2 8 >>= fun k ->
  list_size (return k) (int_range 0 1000) >>= fun parents ->
  return
    (List.mapi
       (fun i r -> Printf.sprintf "C%d" i, if i = 0 then None else Some (r mod i))
       parents)

let build_lattice spec =
  let reg = Registry.create () in
  List.iter
    (fun (name, parent) ->
      match parent with
      | None -> Registry.declare_class reg ~name ~implements:[ "Obvent" ] ()
      | Some p ->
          Registry.declare_class reg ~name ~extends:(Printf.sprintf "C%d" p) ())
    spec;
  reg

(* A model of exactly how the engine drives the index: targets are
   subscription indices; activation splices in incrementally (or, for
   a target already active, falls back to the coarse invalidation —
   both maintenance strategies must agree), deactivation removes.
   Whatever the operation sequence, find must agree with the oracle
   (the linear scan the index replaced). *)
let index_matches_oracle =
  QCheck.Test.make ~count:200 ~name:"index = linear scan under churn"
    QCheck.(
      make
        Gen.(
          gen_lattice >>= fun spec ->
          let k = List.length spec in
          list_size (return 6) (int_range 0 (k - 1)) >>= fun params ->
          list_size (int_range 1 30)
            (pair (int_range 0 3) (int_range 0 (max 5 (k - 1))))
          >>= fun ops -> return (spec, params, ops)))
    (fun (spec, params, ops) ->
      let reg = build_lattice spec in
      let params =
        Array.of_list (List.map (Printf.sprintf "C%d") params)
      in
      let active = Array.make (Array.length params) false in
      let idx = Routing.create reg in
      let build cls =
        List.filter
          (fun i -> active.(i) && Registry.subtype reg cls params.(i))
          (List.init (Array.length params) Fun.id)
      in
      let n_classes = ref (List.length spec) in
      List.for_all
        (fun (op, j) ->
          match op with
          | 0 ->
              (* find: compare against the oracle *)
              let cls = Printf.sprintf "C%d" (j mod !n_classes) in
              Routing.find idx cls ~build = build cls
          | 1 ->
              (* activate: incremental splice, matching the oracle's
                 ascending-index order; re-activating an already-active
                 target exercises the invalidation fallback instead
                 (splicing again would duplicate it) *)
              let i = j mod Array.length params in
              if active.(i) then Routing.invalidate idx ~param:params.(i)
              else begin
                active.(i) <- true;
                Routing.add idx ~param:params.(i) ~compare:Int.compare i
              end;
              true
          | 2 ->
              (* deactivate *)
              let i = j mod Array.length params in
              active.(i) <- false;
              Routing.remove idx ~param:params.(i) (fun i' -> i' = i);
              true
          | _ ->
              (* late declaration under a random existing class *)
              let parent = Printf.sprintf "C%d" (j mod !n_classes) in
              let name = Printf.sprintf "C%d" !n_classes in
              Registry.declare_class reg ~name ~extends:parent ();
              incr n_classes;
              true)
        ops)

(* --- end-to-end delivery equivalence --------------------------------- *)

let stock_params =
  [| "StockObvent"; "StockQuote"; "StockRequest"; "SpotPrice"; "MarketPrice" |]

let leaf_classes = [| "StockQuote"; "SpotPrice"; "MarketPrice" |]

(* Random subscriptions in two activation phases, random events in two
   batches: every subscription's delivered count must equal the linear
   scan oracle over the batches it was active for. *)
let delivery_matches_oracle =
  QCheck.Test.make ~count:30 ~name:"delivery sets = subtype oracle"
    QCheck.(
      make
        Gen.(
          list_size (return 6) (int_range 0 (Array.length stock_params - 1))
          >>= fun params ->
          list_size (return 6) (oneofl [ `Early; `Late; `Dropped; `Never ])
          >>= fun phases ->
          list_size (int_range 1 12)
            (int_range 0 (Array.length leaf_classes - 1))
          >>= fun batch1 ->
          list_size (int_range 1 12)
            (int_range 0 (Array.length leaf_classes - 1))
          >>= fun batch2 -> return (params, phases, batch1, batch2)))
    (fun (params, phases, batch1, batch2) ->
      let reg, engine, _net, _domain, procs = setup ~n:4 () in
      let subs =
        List.map2
          (fun pi phase ->
            let p = procs.(1 + (pi mod 3)) in
            let s = Process.subscribe p ~param:stock_params.(pi) (fun _ -> ()) in
            s, stock_params.(pi), phase)
          params phases
      in
      (* Phase 1: `Early and `Dropped are active. *)
      List.iter
        (fun (s, _, phase) ->
          match phase with
          | `Early | `Dropped -> Subscription.activate s
          | `Late | `Never -> ())
        subs;
      let publish cls_idx =
        Process.publish procs.(0) (quote_of reg ~cls:leaf_classes.(cls_idx) ())
      in
      List.iter publish batch1;
      Engine.run engine;
      (* Phase 2: `Late joins, `Dropped leaves. *)
      List.iter
        (fun (s, _, phase) ->
          match phase with
          | `Late -> Subscription.activate s
          | `Dropped -> Subscription.deactivate s
          | `Early | `Never -> ())
        subs;
      List.iter publish batch2;
      Engine.run engine;
      let matches param batch =
        List.length
          (List.filter
             (fun ci -> Registry.subtype reg leaf_classes.(ci) param)
             batch)
      in
      List.for_all
        (fun (s, param, phase) ->
          let expect =
            match phase with
            | `Early -> matches param batch1 + matches param batch2
            | `Dropped -> matches param batch1
            | `Late -> matches param batch2
            | `Never -> 0
          in
          Subscription.delivered s = expect)
        subs)

(* --- clone identity on the gated path -------------------------------- *)

let test_clone_identity_with_filters () =
  (* The gating instance doubles as the first delivered clone; it must
     still be physically distinct from the publisher's object and from
     every other subscriber's copy (§2.1.2). *)
  let reg, engine, _net, domain, procs = setup ~n:2 () in
  let got = ref [] in
  let low = Fspec.tree Tpbs_filter.Expr.(getter [ "getPrice" ] <. float 100.) in
  let high =
    Fspec.tree Tpbs_filter.Expr.(getter [ "getPrice" ] >. float 1000.)
  in
  let subscribe filter =
    let s =
      Process.subscribe procs.(1) ~param:"StockQuote" ~filter (fun o ->
          got := o :: !got)
    in
    Subscription.activate s
  in
  subscribe low;
  subscribe low;
  subscribe high;
  let original = quote_of reg ~price:80. () in
  Process.publish procs.(0) original;
  Engine.run engine;
  Alcotest.(check int) "two pass the filter" 2 (List.length !got);
  Alcotest.(check int) "one filtered out" 1
    (Domain.stats domain).Domain.filtered_out;
  let uids = List.map Obvent.uid !got in
  Alcotest.(check int) "all clones distinct" 2
    (List.length (List.sort_uniq Int.compare uids));
  Alcotest.(check bool) "none is the published object" false
    (List.mem (Obvent.uid original) uids)

(* --- invalidation ----------------------------------------------------- *)

let test_activate_deactivate_invalidation () =
  let reg, engine, _net, _domain, procs = setup ~n:2 () in
  let s = Process.subscribe procs.(1) ~param:"StockQuote" (fun _ -> ()) in
  let publish () =
    Process.publish procs.(0) (quote_of reg ());
    Engine.run engine
  in
  publish ();
  Alcotest.(check int) "inactive: nothing" 0 (Subscription.delivered s);
  Subscription.activate s;
  publish ();
  Alcotest.(check int) "active: delivered" 1 (Subscription.delivered s);
  Subscription.deactivate s;
  publish ();
  Alcotest.(check int) "deactivated: no longer delivered" 1
    (Subscription.delivered s);
  Subscription.activate s;
  publish ();
  Alcotest.(check int) "reactivated: delivered again" 2
    (Subscription.delivered s)

let test_late_type_registration () =
  (* A class declared after traffic has warmed the index must still
     route to supertype subscribers (generation invalidation). *)
  let reg, engine, _net, _domain, procs = setup ~n:2 () in
  let s = Process.subscribe procs.(1) ~param:"StockObvent" (fun _ -> ()) in
  Subscription.activate s;
  Process.publish procs.(0) (quote_of reg ());
  Engine.run engine;
  Alcotest.(check int) "existing class delivered" 1 (Subscription.delivered s);
  Registry.declare_class reg ~name:"FlashQuote" ~extends:"StockQuote" ();
  Process.publish procs.(0) (quote_of reg ~cls:"FlashQuote" ());
  Engine.run engine;
  Alcotest.(check int) "late class delivered" 2 (Subscription.delivered s)

let test_routing_stats () =
  let reg, engine, _net, _domain, procs = setup ~n:2 () in
  let s = Process.subscribe procs.(1) ~param:"StockQuote" (fun _ -> ()) in
  Subscription.activate s;
  for _ = 1 to 3 do
    Process.publish procs.(0) (quote_of reg ())
  done;
  Engine.run engine;
  let st = Process.routing_stats procs.(1) in
  Alcotest.(check int) "one lookup per event" 3 st.Routing.lookups;
  Alcotest.(check int) "one build for the class" 1 st.Routing.builds;
  Alcotest.(check int) "one cached class" 1 st.Routing.classes

(* --- accounting fixes -------------------------------------------------- *)

let test_stale_counted_once () =
  (* A Timely obvent that survives the egress queue but goes stale in
     flight: one event, three matching subscriptions, expired must
     count 1 — once per event, not once per subscription. *)
  let reg, engine, _net, domain, procs =
    setup ~n:2
      ~config:{ Net.default_config with jitter = 0 }
      ~registry:timely_registry ()
  in
  let got = ref [] in
  for _ = 1 to 3 do
    Subscription.activate
      (Process.subscribe procs.(1) ~param:"Tick" (collect_handler got))
  done;
  let now = Engine.now engine in
  (* ttl 500: longer than the 200-tick drain interval, shorter than
     the 1000-tick network latency. *)
  Process.publish procs.(0)
    (Obvent.make reg "Tick"
       [ "symbol", Value.Str "s"; "birth", Value.Int now;
         "timeToLive", Value.Int 500 ]);
  Engine.run engine;
  Alcotest.(check int) "nothing delivered" 0 (List.length !got);
  Alcotest.(check int) "expired counted once" 1
    (Domain.stats domain).Domain.expired;
  Alcotest.(check int) "no deliveries" 0 (Domain.stats domain).Domain.deliveries

let test_delivery_race_no_crash () =
  (* A broker-style delivery arriving before the receiving process has
     opened the class's channel must be dropped and counted, not abort
     the run. *)
  let reg, engine, net, domain, procs = setup ~n:2 () in
  let obvent_bytes = Obvent.serialize (quote_of reg ()) in
  let envelope =
    Codec.encode (Value.List [ Value.Int 0; Value.Str obvent_bytes ])
  in
  let routed =
    Codec.encode (Value.List [ Value.Str "StockQuote"; Value.Str envelope ])
  in
  Net.send net
    ~src:(Process.node procs.(0))
    ~dst:(Process.node procs.(1))
    ~port:"psb:del" routed;
  Engine.run engine;
  Alcotest.(check int) "counted as decode error" 1
    (Domain.stats domain).Domain.decode_errors;
  Alcotest.(check int) "nothing delivered" 0
    (Domain.stats domain).Domain.deliveries

(* --- registration order ------------------------------------------------ *)

let test_nodes_creation_order () =
  (* Registration prepends internally; the public views must stay in
     creation order. *)
  let _reg, _engine, _net, domain, procs = setup ~n:5 () in
  Alcotest.(check (list int))
    "Domain.nodes in creation order"
    (Array.to_list (Array.map Process.node procs))
    (Domain.nodes domain)

let suite =
  ( "routing",
    [ Alcotest.test_case "index = linear scan under churn" `Quick (fun () ->
          QCheck.Test.check_exn index_matches_oracle);
      Alcotest.test_case "delivery sets = subtype oracle" `Quick (fun () ->
          QCheck.Test.check_exn delivery_matches_oracle);
      Alcotest.test_case "clone identity on gated path (§2.1.2)" `Quick
        test_clone_identity_with_filters;
      Alcotest.test_case "activate/deactivate invalidation" `Quick
        test_activate_deactivate_invalidation;
      Alcotest.test_case "late type registration" `Quick
        test_late_type_registration;
      Alcotest.test_case "routing stats" `Quick test_routing_stats;
      Alcotest.test_case "stale Timely counted once per event" `Quick
        test_stale_counted_once;
      Alcotest.test_case "delivery/registration race survives" `Quick
        test_delivery_race_no_crash;
      Alcotest.test_case "registration order preserved" `Quick
        test_nodes_creation_order ] )
