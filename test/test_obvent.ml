open Helpers

let check_raises_invalid name f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected Invalid_obvent")
  | exception Obvent.Invalid_obvent _ -> ()

let test_make_and_getters () =
  let reg = stock_registry () in
  let q = quote reg () in
  Alcotest.(check string) "class" "StockQuote" (Obvent.cls q);
  Alcotest.check value_testable "company" (Value.Str "Telco Mobiles")
    (Obvent.get q "company");
  Alcotest.check value_testable "getPrice()" (Value.Float 80.)
    (Obvent.invoke reg q "getPrice");
  Alcotest.check value_testable "getAmount()" (Value.Int 10)
    (Obvent.invoke reg q "getAmount")

let test_field_order_normalized () =
  let reg = stock_registry () in
  let a =
    Obvent.make reg "StockQuote"
      [ "amount", Value.Int 1; "price", Value.Float 2.; "company", Value.Str "X" ]
  and b =
    Obvent.make reg "StockQuote"
      [ "company", Value.Str "X"; "price", Value.Float 2.; "amount", Value.Int 1 ]
  in
  Alcotest.(check bool) "same content regardless of field order" true
    (Obvent.equal_content a b)

let test_validation_errors () =
  let reg = stock_registry () in
  check_raises_invalid "unknown class" (fun () ->
      Obvent.make reg "Nope" []);
  check_raises_invalid "interface not instantiable" (fun () ->
      Obvent.make reg "Obvent" []);
  check_raises_invalid "missing attribute" (fun () ->
      Obvent.make reg "StockQuote" [ "company", Value.Str "X" ]);
  check_raises_invalid "mistyped attribute" (fun () ->
      Obvent.make reg "StockQuote"
        [ "company", Value.Str "X"; "price", Value.Str "80";
          "amount", Value.Int 1 ]);
  check_raises_invalid "extra field" (fun () ->
      Obvent.make reg "StockQuote"
        [ "company", Value.Str "X"; "price", Value.Float 1.;
          "amount", Value.Int 1; "extra", Value.Int 0 ]);
  let reg2 = Registry.create () in
  Registry.declare_class reg2 ~name:"Plain" ~attrs:[] ();
  check_raises_invalid "not an obvent type" (fun () ->
      ignore (Obvent.make reg2 "Plain" []))

let test_serialization_roundtrip () =
  let reg = stock_registry () in
  let q = quote reg ~company:"Acme" ~price:12.5 ~amount:3 () in
  let q' = Obvent.deserialize reg (Obvent.serialize q) in
  Alcotest.(check bool) "content preserved" true (Obvent.equal_content q q');
  Alcotest.(check bool) "fresh uid" true (Obvent.uid q <> Obvent.uid q')

let test_clone_uniqueness () =
  (* Obvent Local Uniqueness (§2.1.2): each notifiable gets its own copy. *)
  let reg = stock_registry () in
  let original = quote reg () in
  let copy1 = Obvent.clone reg original in
  let copy2 = Obvent.clone reg original in
  Alcotest.(check bool) "distinct uids" true
    (Obvent.uid copy1 <> Obvent.uid copy2
    && Obvent.uid copy1 <> Obvent.uid original);
  Alcotest.(check bool) "equal content" true (Obvent.equal_content copy1 copy2)

let test_instance_of () =
  let reg = stock_registry () in
  let spot =
    Obvent.make reg "SpotPrice"
      [ "company", Value.Str "T"; "price", Value.Float 1.; "amount", Value.Int 1 ]
  in
  List.iter
    (fun t ->
      Alcotest.(check bool) ("instance of " ^ t) true
        (Obvent.instance_of reg spot t))
    [ "SpotPrice"; "StockRequest"; "StockObvent"; "Obvent" ];
  Alcotest.(check bool) "not a quote" false
    (Obvent.instance_of reg spot "StockQuote")

let test_invoke_rejects_unknown () =
  let reg = stock_registry () in
  let q = quote reg () in
  check_raises_invalid "unknown method" (fun () ->
      Obvent.invoke reg q "getNope")

let test_deserialize_rejects_garbage () =
  let reg = stock_registry () in
  check_raises_invalid "garbage bytes" (fun () ->
      Obvent.deserialize reg "\xff\xff");
  (* A well-formed value that is not a conforming obvent. *)
  check_raises_invalid "non-obvent value" (fun () ->
      Obvent.deserialize reg (Tpbs_serial.Codec.encode (Value.Int 3)));
  check_raises_invalid "unknown class payload" (fun () ->
      Obvent.deserialize reg
        (Tpbs_serial.Codec.encode (Value.obj "Mystery" [])))

let test_qos_helpers () =
  let reg = stock_registry () in
  Registry.declare_class reg ~name:"UrgentQuote" ~extends:"StockQuote"
    ~implements:[ "Prioritary"; "Timely" ]
    ~attrs:
      [ "priority", Vtype.Tint; "timeToLive", Vtype.Tint; "birth", Vtype.Tint ]
    ();
  let u =
    Obvent.make reg "UrgentQuote"
      [ "company", Value.Str "T"; "price", Value.Float 1.;
        "amount", Value.Int 1; "priority", Value.Int 7;
        "timeToLive", Value.Int 500; "birth", Value.Int 42 ]
  in
  Alcotest.(check int) "priority" 7 (Obvent.priority reg u);
  Alcotest.(check (option int)) "ttl" (Some 500) (Obvent.time_to_live reg u);
  Alcotest.(check (option int)) "birth" (Some 42) (Obvent.birth reg u);
  let q = quote reg () in
  Alcotest.(check int) "default priority" 0 (Obvent.priority reg q);
  Alcotest.(check (option int)) "no ttl" None (Obvent.time_to_live reg q)

(* --- copy-on-write views (§2.1.2 without the decode) ----------------- *)

let test_cow_view_identity () =
  let reg = stock_registry () in
  let src = quote reg () in
  let v1 = Obvent.view src in
  let v2 = Obvent.view src in
  Alcotest.(check bool) "source is not a view" false (Obvent.is_view src);
  Alcotest.(check bool) "views are views" true
    (Obvent.is_view v1 && Obvent.is_view v2);
  Alcotest.(check bool) "all uids distinct" true
    (List.length
       (List.sort_uniq Int.compare
          (List.map Obvent.uid [ src; v1; v2 ]))
    = 3);
  Alcotest.(check bool) "content shared" true
    (Obvent.equal_content src v1 && Obvent.equal_content v1 v2)

let test_cow_mutation_isolation () =
  let reg = stock_registry () in
  let src = quote reg ~price:80. () in
  let v1 = Obvent.view src in
  let v2 = Obvent.view src in
  Obvent.set reg v1 "price" (Value.Float 1.);
  Alcotest.check value_testable "written view sees the write"
    (Value.Float 1.) (Obvent.get v1 "price");
  Alcotest.check value_testable "source untouched" (Value.Float 80.)
    (Obvent.get src "price");
  Alcotest.check value_testable "sibling view untouched" (Value.Float 80.)
    (Obvent.get v2 "price");
  Alcotest.(check bool) "write materialized the view" false
    (Obvent.is_view v1);
  Alcotest.(check bool) "sibling still shares" true (Obvent.is_view v2);
  (* The other direction: a write through the source must not leak
     into a still-shared view. *)
  Obvent.set reg src "amount" (Value.Int 999);
  Alcotest.check value_testable "view isolated from source write"
    (Value.Int 10) (Obvent.get v2 "amount")

let test_cow_setter_path () =
  let reg = stock_registry () in
  let v = Obvent.view (quote reg ()) in
  Obvent.invoke_setter reg v "setPrice" (Value.Float 2.5);
  Alcotest.check value_testable "setter wrote through" (Value.Float 2.5)
    (Obvent.get v "price");
  Alcotest.(check (option string)) "attr_of_setter" (Some "price")
    (Obvent.attr_of_setter "setPrice");
  Alcotest.(check (option string)) "not a setter" None
    (Obvent.attr_of_setter "getPrice");
  check_raises_invalid "unknown attribute" (fun () ->
      Obvent.set reg v "nope" (Value.Int 1));
  check_raises_invalid "mistyped write" (fun () ->
      Obvent.set reg v "price" (Value.Str "cheap"));
  check_raises_invalid "non-setter method" (fun () ->
      Obvent.invoke_setter reg v "getPrice" (Value.Int 1))

let test_cow_stats_accounting () =
  let reg = stock_registry () in
  let before = Obvent.cow_stats () in
  let src = quote reg () in
  let v1 = Obvent.view src in
  let _v2 = Obvent.view src in
  Obvent.set reg v1 "price" (Value.Float 3.);
  Obvent.set reg v1 "price" (Value.Float 4.);  (* second write: no-op *)
  let after = Obvent.cow_stats () in
  Alcotest.(check int) "two views minted" 2 (after.views - before.views);
  Alcotest.(check int) "one materialization" 1
    (after.materializations - before.materializations)

let prop_view_equiv_clone =
  QCheck.Test.make
    ~name:"cow view == round-trip clone (fresh identity, isolation)"
    ~count:300
    (QCheck.pair
       (QCheck.make (gen_quote (stock_registry ())))
       QCheck.(float_range 0. 500.))
    (fun (q, new_price) ->
      let reg = stock_registry () in
      let v = Obvent.view q in
      let c = Obvent.clone reg q in
      (* Identical observable state, pairwise-distinct identity. *)
      Obvent.equal_content v c
      && Obvent.cls v = Obvent.cls c
      && Obvent.uid v <> Obvent.uid q
      && Obvent.uid v <> Obvent.uid c
      &&
      (* A write through the view behaves exactly like a write through
         the round-trip clone: visible there, invisible everywhere
         else. *)
      let before = Obvent.get q "price" in
      Obvent.set reg v "price" (Value.Float new_price);
      Value.equal (Obvent.get v "price") (Value.Float new_price)
      && Value.equal (Obvent.get q "price") before
      && Value.equal (Obvent.get c "price") before)

let prop_serialize_roundtrip =
  QCheck.Test.make ~name:"obvent serialize/deserialize preserves content"
    ~count:300
    (QCheck.make (gen_quote (stock_registry ())))
    (fun q ->
      let reg = stock_registry () in
      let q' = Obvent.deserialize reg (Obvent.serialize q) in
      Obvent.equal_content q q' && Obvent.uid q <> Obvent.uid q')

let prop_conforms_iff_deserializable =
  QCheck.Test.make
    ~name:"registry conformance <=> obvent adoption succeeds" ~count:200
    Helpers.arb_value
    (fun v ->
      let reg = stock_registry () in
      let conforming =
        match v with
        | Value.Obj o ->
            Registry.exists reg o.cls && Registry.conforms reg v o.cls
            && Registry.is_obvent_type reg o.cls
        | _ -> false
      in
      let adopted =
        match Obvent.of_value reg v with
        | _ -> true
        | exception Obvent.Invalid_obvent _ -> false
      in
      conforming = adopted)

let suite =
  ( "obvent",
    [ Alcotest.test_case "make and getters" `Quick test_make_and_getters;
      Alcotest.test_case "field order normalized" `Quick
        test_field_order_normalized;
      Alcotest.test_case "validation errors" `Quick test_validation_errors;
      Alcotest.test_case "serialization roundtrip" `Quick
        test_serialization_roundtrip;
      Alcotest.test_case "clone uniqueness (§2.1.2)" `Quick
        test_clone_uniqueness;
      Alcotest.test_case "instance_of over hierarchy" `Quick test_instance_of;
      Alcotest.test_case "invoke rejects unknown methods" `Quick
        test_invoke_rejects_unknown;
      Alcotest.test_case "deserialize rejects garbage" `Quick
        test_deserialize_rejects_garbage;
      Alcotest.test_case "qos helper getters" `Quick test_qos_helpers;
      Alcotest.test_case "cow view identity" `Quick test_cow_view_identity;
      Alcotest.test_case "cow mutation isolation (§2.1.2)" `Quick
        test_cow_mutation_isolation;
      Alcotest.test_case "cow setter path + validation" `Quick
        test_cow_setter_path;
      Alcotest.test_case "cow stats accounting" `Quick
        test_cow_stats_accounting ]
    @ List.map QCheck_alcotest.to_alcotest
        [ prop_view_equiv_clone; prop_serialize_roundtrip;
          prop_conforms_iff_deserializable ] )
