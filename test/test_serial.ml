open Helpers
module Wire = Tpbs_serial.Wire
module Codec = Tpbs_serial.Codec

let test_varint_examples () =
  List.iter
    (fun n ->
      let w = Wire.Writer.create () in
      Wire.Writer.varint w n;
      let r = Wire.Reader.of_string (Wire.Writer.contents w) in
      Alcotest.(check int) (Printf.sprintf "varint %d" n) n (Wire.Reader.varint r))
    [ 0; 1; 127; 128; 300; 16384; 1 lsl 30; max_int ]

let test_varint_negative_rejected () =
  let w = Wire.Writer.create () in
  Alcotest.check_raises "negative varint"
    (Invalid_argument "Wire.Writer.varint: negative") (fun () ->
      Wire.Writer.varint w (-1))

let test_zigzag_examples () =
  List.iter
    (fun n ->
      let w = Wire.Writer.create () in
      Wire.Writer.zigzag w n;
      let r = Wire.Reader.of_string (Wire.Writer.contents w) in
      Alcotest.(check int) (Printf.sprintf "zigzag %d" n) n (Wire.Reader.zigzag r))
    [ 0; -1; 1; -64; 64; min_int / 2; max_int / 2 ]

let test_mixed_stream () =
  let w = Wire.Writer.create () in
  Wire.Writer.bool w true;
  Wire.Writer.string w "hello";
  Wire.Writer.f64 w 3.25;
  Wire.Writer.zigzag w (-42);
  let r = Wire.Reader.of_string (Wire.Writer.contents w) in
  Alcotest.(check bool) "bool" true (Wire.Reader.bool r);
  Alcotest.(check string) "string" "hello" (Wire.Reader.string r);
  Alcotest.(check (float 0.)) "f64" 3.25 (Wire.Reader.f64 r);
  Alcotest.(check int) "zigzag" (-42) (Wire.Reader.zigzag r);
  Alcotest.(check bool) "at_end" true (Wire.Reader.at_end r)

let test_truncated_read () =
  let r = Wire.Reader.of_string "\x05ab" in
  Alcotest.check_raises "truncated string" (Wire.Truncated "raw") (fun () ->
      ignore (Wire.Reader.string r))

let test_varint_overlong_rejected () =
  (* Ten continuation bytes exceed a 63-bit integer. *)
  let r = Wire.Reader.of_string "\xff\xff\xff\xff\xff\xff\xff\xff\xff\x01" in
  match Wire.Reader.varint r with
  | exception Wire.Malformed _ -> ()
  | _ -> Alcotest.fail "overlong varint accepted"

(* Regression: the reader used to accumulate bytes past the 63-bit
   space with plain [lsl], silently dropping any bits above 62 — an
   encoding of 2^62 would quietly decode as 0. Every encoding that
   sets bits outside [0, 2^62) must now raise. *)
let test_varint_overflow_rejected () =
  List.iter
    (fun (what, s) ->
      let r = Wire.Reader.of_string s in
      match Wire.Reader.varint r with
      | exception Wire.Malformed "varint overflow" -> ()
      | v -> Alcotest.failf "%s accepted as %d" what v)
    [ ("2^62 (bit 62 set)", "\x80\x80\x80\x80\x80\x80\x80\x80\x40");
      ("9th byte with high bits", "\xff\xff\xff\xff\xff\xff\xff\xff\x7f");
      ("10-byte continuation", "\x80\x80\x80\x80\x80\x80\x80\x80\x80\x01") ]

let test_varint_62bit_edge () =
  (* max_int = 2^62 - 1 is the largest legal varint: exactly 9 bytes,
     last byte 0x3f, and it round-trips. *)
  let w = Wire.Writer.create () in
  Wire.Writer.varint w max_int;
  let s = Wire.Writer.contents w in
  Alcotest.(check int) "9 bytes" 9 (String.length s);
  Alcotest.(check char) "last byte" '\x3f' s.[8];
  let r = Wire.Reader.of_string s in
  Alcotest.(check int) "roundtrip" max_int (Wire.Reader.varint r)

let test_uvarint_full_width () =
  (* uvarint carries all 63 bits of the tagged-int pattern (zigzag of
     negatives lands here), so -1 and min_int must survive where the
     non-negative varint would refuse. *)
  List.iter
    (fun n ->
      let w = Wire.Writer.create () in
      Wire.Writer.uvarint w n;
      let r = Wire.Reader.of_string (Wire.Writer.contents w) in
      Alcotest.(check int)
        (Printf.sprintf "uvarint %d" n)
        n (Wire.Reader.uvarint r))
    [ 0; 1; -1; min_int; max_int; min_int + 1 ]

let test_crc32_known () =
  (* Standard check value for "123456789". *)
  Alcotest.(check int32) "crc32" 0xCBF43926l (Wire.crc32 "123456789");
  Alcotest.(check int32) "crc32 empty" 0l (Wire.crc32 "")

let test_roundtrip_examples () =
  let samples : Tpbs_serial.Value.t list =
    [ Null; Bool true; Bool false; Int 0; Int (-1); Int max_int;
      Float 3.1415; Float nan; Float infinity; Str ""; Str "héllo\nworld";
      List []; List [ Int 1; Str "a"; Null ];
      Value.obj "StockQuote"
        [ "company", Str "Telco"; "price", Float 80.; "amount", Int 10 ];
      Remote { iface = "StockMarket"; node_id = 3; object_id = 17 };
      List [ Value.obj "A" [ "x", List [ Value.obj "B" [] ] ] ] ]
  in
  List.iter
    (fun v ->
      Alcotest.check value_testable (Value.to_string v) v
        (Codec.decode (Codec.encode v)))
    samples

let test_decode_garbage () =
  Alcotest.check_raises "unknown tag" (Codec.Decode_error "unknown tag 200")
    (fun () -> ignore (Codec.decode "\xc8"));
  (match Codec.decode "" with
  | exception Codec.Decode_error _ -> ()
  | _ -> Alcotest.fail "empty input should fail");
  match Codec.decode (Codec.encode (Int 5) ^ "x") with
  | exception Codec.Decode_error _ -> ()
  | _ -> Alcotest.fail "trailing bytes should fail"

let test_clone_fresh () =
  let v =
    Value.obj "StockQuote" [ "company", Value.Str "Telco"; "xs", List [ Int 1 ] ]
  in
  let c = Codec.clone v in
  Alcotest.check value_testable "clone equal" v c;
  (match v, c with
  | Obj a, Obj b -> Alcotest.(check bool) "physically fresh" false (a == b)
  | _ -> Alcotest.fail "expected objects")

let test_frame_roundtrip () =
  let payload = Codec.encode (Value.obj "X" [ "a", Int 1 ]) in
  Alcotest.(check string) "unframe . frame" payload
    (Codec.unframe (Codec.frame payload))

let test_frame_corruption () =
  let f = Bytes.of_string (Codec.frame "hello world") in
  Bytes.set f 3 'X';
  match Codec.unframe (Bytes.to_string f) with
  | exception Codec.Decode_error _ -> ()
  | _ -> Alcotest.fail "corrupted frame accepted"

let test_deep_nesting () =
  let rec nest n v =
    if n = 0 then v else nest (n - 1) (Value.List [ v ])
  in
  let deep = nest 200 (Value.Int 7) in
  Alcotest.check value_testable "deep roundtrip" deep
    (Codec.decode (Codec.encode deep));
  Alcotest.(check int) "depth" 201 (Value.depth deep);
  Alcotest.(check int) "weight" 201 (Value.weight deep)

let test_value_weight_and_field () =
  let v =
    Value.obj "Q"
      [ "a", Value.Int 1; "b", Value.List [ Value.Int 2; Value.Int 3 ] ]
  in
  Alcotest.(check int) "weight counts nodes" 5 (Value.weight v);
  Alcotest.(check (option value_testable)) "field access" (Some (Value.Int 1))
    (Value.field v "a");
  Alcotest.(check (option value_testable)) "missing field" None
    (Value.field v "z");
  Alcotest.(check (option value_testable)) "field on non-object" None
    (Value.field (Value.Int 3) "a")

let test_unframe_length_lies () =
  (* A frame whose length prefix exceeds the available bytes. *)
  let w = Wire.Writer.create () in
  Wire.Writer.varint w 1000;
  Wire.Writer.raw w "short";
  match Codec.unframe (Wire.Writer.contents w) with
  | exception Codec.Decode_error _ -> ()
  | _ -> Alcotest.fail "lying length accepted"

(* --- lazy field projection (Cursor) ----------------------------------- *)

module Cursor = Tpbs_serial.Cursor

let test_cursor_class_id () =
  let v =
    Value.obj "StockQuote"
      [ "company", Value.Str "Telco"; "price", Value.Float 80. ]
  in
  Alcotest.(check (option string)) "object class" (Some "StockQuote")
    (Cursor.class_id (Cursor.of_string (Codec.encode v)));
  Alcotest.(check (option string)) "non-object" None
    (Cursor.class_id (Cursor.of_string (Codec.encode (Value.Int 3))))

let test_cursor_projection_examples () =
  let v =
    Value.obj "Order"
      [ "qty", Value.Int 4;
        "item",
        Value.obj "Item" [ "name", Value.Str "bolt"; "price", Value.Float 2. ] ]
  in
  let c = Cursor.of_string (Codec.encode v) in
  Alcotest.(check (option value_testable)) "top-level field"
    (Some (Value.Int 4))
    (Cursor.project c [ "qty" ]);
  Alcotest.(check (option value_testable)) "nested path"
    (Some (Value.Float 2.))
    (Cursor.project c [ "item"; "price" ]);
  Alcotest.(check (option value_testable)) "whole subobject"
    (Value.field v "item")
    (Cursor.project c [ "item" ]);
  Alcotest.(check (option value_testable)) "missing field" None
    (Cursor.project c [ "nope" ]);
  Alcotest.(check (option value_testable)) "path through a leaf" None
    (Cursor.project c [ "qty"; "deeper" ])

let test_cursor_malformed_raises () =
  let check_raises what bytes =
    match Cursor.project (Cursor.of_string bytes) [ "f" ] with
    | exception Codec.Decode_error _ -> ()
    | _ -> Alcotest.fail (what ^ ": expected Decode_error")
  in
  (* An unknown tag is "not an object": a projection misses without
     raising, like eval_path on a non-object value. *)
  Alcotest.(check (option value_testable)) "unknown tag projects to None"
    None
    (Cursor.project (Cursor.of_string "\xc8") [ "f" ]);
  check_raises "empty input" "";
  (* A valid prefix cut short inside a field value. *)
  let whole = Codec.encode (Value.obj "C" [ "g", Value.Str "hello" ]) in
  check_raises "truncated" (String.sub whole 0 (String.length whole - 2))

let test_cursor_of_substring () =
  (* A cursor over a slice of a larger buffer (the zero-copy transport
     path: an envelope parked inside a frame) behaves exactly like one
     over the extracted string. *)
  let v = Value.obj "Order" [ "qty", Value.Int 4; "tag", Value.Str "x" ] in
  let enc = Codec.encode v in
  let padded = "junk-before" ^ enc ^ "junk-after" in
  let c = Cursor.of_substring padded ~off:11 ~len:(String.length enc) in
  Alcotest.(check string) "bytes materializes the slice" enc (Cursor.bytes c);
  Alcotest.(check (option string)) "class id through the slice"
    (Some "Order") (Cursor.class_id c);
  Alcotest.(check (option value_testable)) "projection through the slice"
    (Some (Value.Int 4))
    (Cursor.project c [ "qty" ]);
  Alcotest.(check value_testable) "full decode through the slice" v
    (Cursor.to_value c);
  (* The slice length is authoritative: bytes beyond it are trailing
     garbage, not silently ignored. *)
  (match
     Cursor.to_value
       (Cursor.of_substring padded ~off:11 ~len:(String.length enc + 3))
   with
  | exception Codec.Decode_error _ -> ()
  | _ -> Alcotest.fail "trailing bytes inside the slice must be rejected");
  List.iter
    (fun (off, len) ->
      match Cursor.of_substring padded ~off ~len with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "bounds (%d, %d) must be rejected" off len)
    [ (-1, 4); (0, -1); (0, String.length padded + 1); (String.length padded, 1) ]

let test_cursor_counters () =
  let v = Value.obj "C" [ "f", Value.Int 1 ] in
  let c = Cursor.of_string (Codec.encode v) in
  let l0 = Cursor.lazy_decodes () and f0 = Cursor.full_decodes () in
  ignore (Cursor.project c [ "f" ]);
  ignore (Cursor.to_value c);
  Alcotest.(check int) "projection counted lazy" 1
    (Cursor.lazy_decodes () - l0);
  Alcotest.(check int) "to_value counted full" 1
    (Cursor.full_decodes () - f0)

(* Oracle navigation over the in-memory value, mirroring what the
   cursor does over the encoded bytes. *)
let rec model_path (v : Value.t) = function
  | [] -> Some v
  | a :: rest -> (
      match v with
      | Value.Obj o -> (
          match List.assoc_opt a o.fields with
          | Some v' -> model_path v' rest
          | None -> None)
      | _ -> None)

(* Every attribute path reachable in the value, plus a miss at each
   object. Generated values are depth-bounded, so this is small. *)
let rec all_paths (v : Value.t) =
  [] ::
  (match v with
  | Value.Obj o ->
      [ "missing#" ]
      :: List.concat_map
           (fun (n, v') -> List.map (fun p -> n :: p) (all_paths v'))
           o.fields
  | _ -> [ [ "missing#" ] ])

let prop_cursor_agrees_with_decode =
  QCheck.Test.make
    ~name:"cursor projection = full-decode navigation, on every path"
    ~count:300 arb_value
    (fun v ->
      let c = Cursor.of_string (Codec.encode v) in
      Value.equal (Cursor.to_value c) v
      && Cursor.class_id c
         = (match v with Value.Obj o -> Some o.cls | _ -> None)
      && List.for_all
           (fun path ->
             match Cursor.project c path, model_path v path with
             | Some a, Some b -> Value.equal a b
             | None, None -> true
             | Some _, None | None, Some _ -> false)
           (all_paths v))

let prop_roundtrip =
  QCheck.Test.make ~name:"codec roundtrip" ~count:500 arb_value (fun v ->
      Value.equal v (Codec.decode (Codec.encode v)))

let prop_encoded_size =
  QCheck.Test.make ~name:"encoded_size = length of encode" ~count:200 arb_value
    (fun v -> Codec.encoded_size v = String.length (Codec.encode v))

let prop_frame =
  QCheck.Test.make ~name:"frame roundtrip" ~count:200
    QCheck.(string_of_size (QCheck.Gen.int_range 0 200))
    (fun s -> String.equal s (Codec.unframe (Codec.frame s)))

(* Boundary-biased generators: random draws almost never hit the
   encoding's interesting seams (7-bit group boundaries, the sign
   pivot of zigzag, min_int whose negation overflows), so mix explicit
   boundary values into the distribution. *)
let varint_boundary_gen =
  QCheck.Gen.(
    let boundaries =
      oneofl
        (List.filter
           (fun n -> n >= 0)  (* 1 lsl 62 wraps to min_int on 64-bit *)
           ([ 0; 1; 127; 128; 255; 256; max_int; max_int - 1 ]
           @ List.concat_map
               (fun k -> [ (1 lsl k) - 1; 1 lsl k; (1 lsl k) + 1 ])
               [ 7; 14; 21; 28; 31; 32; 35; 42; 49; 56; 61; 62 ]))
    in
    oneof [ boundaries; map abs (int_range 0 max_int) ])

let zigzag_boundary_gen =
  QCheck.Gen.(
    let boundaries =
      oneofl
        ([ 0; 1; -1; 63; 64; -64; -65; min_int; min_int + 1; max_int;
           max_int - 1 ]
        @ List.concat_map
            (fun k ->
              [ (1 lsl k) - 1; 1 lsl k; - (1 lsl k); - (1 lsl k) - 1 ])
            [ 6; 13; 20; 27; 31; 34; 41; 48; 55; 61; 62 ])
    in
    oneof [ boundaries; int ])

let prop_varint_boundary_roundtrip =
  QCheck.Test.make ~name:"varint boundary roundtrip" ~count:500
    (QCheck.make ~print:string_of_int varint_boundary_gen)
    (fun n ->
      let w = Wire.Writer.create () in
      Wire.Writer.varint w n;
      let r = Wire.Reader.of_string (Wire.Writer.contents w) in
      Wire.Reader.varint r = n && Wire.Reader.remaining r = 0)

let prop_zigzag_boundary_roundtrip =
  QCheck.Test.make ~name:"zigzag boundary roundtrip (incl. min_int)" ~count:500
    (QCheck.make ~print:string_of_int zigzag_boundary_gen)
    (fun n ->
      let w = Wire.Writer.create () in
      Wire.Writer.zigzag w n;
      let r = Wire.Reader.of_string (Wire.Writer.contents w) in
      Wire.Reader.zigzag r = n && Wire.Reader.remaining r = 0)

let prop_compare_reflexive =
  QCheck.Test.make ~name:"Value.compare reflexive & consistent with equal"
    ~count:300
    QCheck.(pair arb_value arb_value)
    (fun (a, b) ->
      Value.compare a a = 0
      && Value.equal a b = (Value.compare a b = 0))

let prop_varint_overflow_always_rejected =
  QCheck.Test.make ~count:200 ~name:"varint overflow encodings rejected"
    QCheck.(pair (int_bound 0x3f) (int_bound 0x7f))
    (fun (hi, extra) ->
      (* Two families of bad encodings: eight continuation bytes then a
         ninth carrying bit 62 or above, and ten-byte encodings (nine
         continuations then a terminator). Both must raise. *)
      let nine = String.make 8 '\x80' ^ String.make 1 (Char.chr (0x40 lor hi)) in
      let ten =
        String.make 9 (Char.chr (0x80 lor extra)) ^ String.make 1 (Char.chr extra)
      in
      List.for_all
        (fun enc ->
          let r = Wire.Reader.of_string enc in
          match Wire.Reader.varint r with
          | _ -> false
          | exception Wire.Malformed _ -> true)
        [ nine; ten ])

let suite =
  ( "serial",
    [ Alcotest.test_case "varint examples" `Quick test_varint_examples;
      Alcotest.test_case "varint rejects negatives" `Quick
        test_varint_negative_rejected;
      Alcotest.test_case "zigzag examples" `Quick test_zigzag_examples;
      Alcotest.test_case "mixed wire stream" `Quick test_mixed_stream;
      Alcotest.test_case "truncated read raises" `Quick test_truncated_read;
      Alcotest.test_case "crc32 known vector" `Quick test_crc32_known;
      Alcotest.test_case "overlong varint rejected" `Quick
        test_varint_overlong_rejected;
      Alcotest.test_case "varint overflow rejected" `Quick
        test_varint_overflow_rejected;
      Alcotest.test_case "varint 62-bit edge" `Quick test_varint_62bit_edge;
      Alcotest.test_case "uvarint full width" `Quick test_uvarint_full_width;
      Alcotest.test_case "codec roundtrip examples" `Quick
        test_roundtrip_examples;
      Alcotest.test_case "decode rejects garbage" `Quick test_decode_garbage;
      Alcotest.test_case "clone is fresh" `Quick test_clone_fresh;
      Alcotest.test_case "frame roundtrip" `Quick test_frame_roundtrip;
      Alcotest.test_case "frame detects corruption" `Quick
        test_frame_corruption;
      Alcotest.test_case "deep nesting" `Quick test_deep_nesting;
      Alcotest.test_case "value weight/field" `Quick
        test_value_weight_and_field;
      Alcotest.test_case "unframe rejects lying length" `Quick
        test_unframe_length_lies;
      Alcotest.test_case "cursor class-id peek" `Quick test_cursor_class_id;
      Alcotest.test_case "cursor projection examples" `Quick
        test_cursor_projection_examples;
      Alcotest.test_case "cursor rejects malformed input" `Quick
        test_cursor_malformed_raises;
      Alcotest.test_case "cursor decode counters" `Quick test_cursor_counters;
      Alcotest.test_case "cursor over a substring slice" `Quick
        test_cursor_of_substring ]
    @ List.map QCheck_alcotest.to_alcotest
        [ prop_cursor_agrees_with_decode; prop_roundtrip; prop_encoded_size;
          prop_frame;
          prop_varint_boundary_roundtrip; prop_zigzag_boundary_roundtrip;
          prop_varint_overflow_always_rejected;
          prop_compare_reflexive ]
  )
