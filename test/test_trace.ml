open Helpers
module Engine = Tpbs_sim.Engine
module Net = Tpbs_sim.Net
module Metric = Tpbs_sim.Metric
module Trace = Tpbs_trace.Trace
module Histogram = Tpbs_trace.Histogram
module Jsonl = Tpbs_trace.Jsonl
module Report = Tpbs_trace.Report
module Qos = Tpbs_types.Qos
module Pubsub = Tpbs_core.Pubsub
module Domain = Pubsub.Domain
module Process = Pubsub.Process
module Subscription = Pubsub.Subscription

let lines_of buf =
  String.split_on_char '\n' (Buffer.contents buf)
  |> List.filter (fun l -> l <> "")

(* --- Welford stddev ---------------------------------------------------- *)

let test_stddev_large_offset_oracle () =
  (* Samples with a huge common offset: the old sum-of-squares formula
     cancels ~1e24 against ~1e24 and returns garbage (often 0 or a
     value off by orders of magnitude); Welford stays exact. The
     oracle is the population stddev of 0..999, invariant under
     shifts. *)
  let m = Metric.create () in
  let offset = 1e12 in
  for i = 0 to 999 do
    Metric.record m (offset +. float_of_int i)
  done;
  let oracle = sqrt ((1000. ** 2. -. 1.) /. 12.) in
  let got = Metric.stddev m in
  Alcotest.(check bool)
    (Printf.sprintf "stddev %.6f within 1e-6 of oracle %.6f" got oracle)
    true
    (abs_float (got -. oracle) /. oracle < 1e-6);
  Alcotest.(check bool)
    "mean survives the offset" true
    (abs_float (Metric.mean m -. (offset +. 499.5)) < 1e-3)

let test_stddev_small_samples () =
  let m = Metric.create () in
  Alcotest.(check (float 0.)) "empty" 0. (Metric.stddev m);
  Metric.record m 5.;
  Alcotest.(check (float 0.)) "single sample" 0. (Metric.stddev m);
  Metric.record m 9.;
  (* population stddev of {5, 9} = 2 *)
  Alcotest.(check (float 1e-9)) "pair" 2. (Metric.stddev m)

let test_histogram_summary () =
  let h = Histogram.create () in
  for i = 1 to 100 do
    Histogram.record h (float_of_int i)
  done;
  Alcotest.(check int) "count" 100 (Histogram.count h);
  Alcotest.(check (float 1e-9)) "mean" 50.5 (Histogram.mean h);
  Alcotest.(check (float 0.)) "min" 1. (Histogram.min h);
  Alcotest.(check (float 0.)) "max" 100. (Histogram.max h);
  Alcotest.(check (float 0.)) "p50" 50. (Histogram.percentile h 0.5);
  Alcotest.(check (float 0.)) "p99" 99. (Histogram.percentile h 0.99)

(* --- counters / gauges ------------------------------------------------- *)

let test_counters_and_gauges () =
  let tr = Trace.create () in
  let c = Trace.counter tr "x.count" in
  Trace.Counter.incr c;
  Trace.Counter.add c 4;
  Alcotest.(check int) "counter" 5 (Trace.Counter.value c);
  Alcotest.(check bool) "find-or-create returns same" true
    (Trace.counter tr "x.count" == c);
  let g = Trace.gauge tr "x.level" in
  Trace.Gauge.set g 7;
  Trace.Gauge.set g 3;
  Alcotest.(check int) "gauge level" 3 (Trace.Gauge.value g);
  Alcotest.(check int) "gauge peak" 7 (Trace.Gauge.peak g);
  Trace.reset tr;
  Alcotest.(check int) "counter reset in place" 0 (Trace.Counter.value c);
  Alcotest.(check int) "gauge reset" 0 (Trace.Gauge.peak g)

(* --- JSONL exporter + parser ------------------------------------------- *)

let test_exported_jsonl_is_valid () =
  let time = ref 0 in
  let tr = Trace.create ~clock:(fun () -> !time) () in
  let buf = Buffer.create 256 in
  Trace.set_sink tr (Some buf);
  time := 42;
  Trace.emit tr ~layer:"core" ~kind:"publish" ~node:3 ~id:(3, 0)
    ~data:[ ("cls", Trace.S "StockQuote") ]
    ();
  time := 99;
  (* Hostile strings must be escaped, not break the line format. *)
  Trace.emit tr ~layer:"net" ~kind:"drop_loss"
    ~data:[ ("port", Trace.S "we\"ird\npo\trt\x01"); ("f", Trace.F 1.5) ]
    ();
  Trace.Counter.add (Trace.counter tr "a.count") 7;
  Trace.Gauge.set (Trace.gauge tr "b.gauge") 11;
  Histogram.record (Trace.histogram tr "c.hist") 2.5;
  Trace.metrics_to_jsonl tr buf;
  let lines = lines_of buf in
  (match Report.check lines with
  | Ok n -> Alcotest.(check int) "all lines valid" 5 n
  | Error (lineno, msg) -> Alcotest.failf "line %d invalid: %s" lineno msg);
  (* Round-trip the hostile string through the parser. *)
  match Jsonl.parse (List.nth lines 1) with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok json -> (
      Alcotest.(check (option (float 0.)))
        "t field" (Some 99.)
        (Option.bind (Jsonl.member "t" json) Jsonl.to_num);
      match Option.bind (Jsonl.member "port" json) Jsonl.to_string with
      | Some s ->
          Alcotest.(check string) "escaping round-trips" "we\"ird\npo\trt\x01" s
      | None -> Alcotest.fail "port field missing")

let test_check_rejects_malformed () =
  let reject line =
    match Report.check [ line ] with
    | Ok _ -> Alcotest.failf "accepted malformed line: %s" (String.escaped line)
    | Error _ -> ()
  in
  reject "{";
  reject "{\"t\":1,\"layer\":\"core\"}";  (* no kind *)
  reject "{\"metric\":\"counter\"}";  (* no name *)
  reject "[1,2,3]";  (* not an object *)
  reject "{\"t\":1,\"layer\":\"core\",\"kind\":\"x\"} trailing";
  reject "{\"t\":1,\"layer\":\"core\",\"kind\":\"\x01\"}";  (* raw control *)
  match
    Report.check
      [ "{\"t\":1,\"layer\":\"core\",\"kind\":\"x\"}"; ""; "not json" ]
  with
  | Error (3, _) -> ()
  | Error (n, _) -> Alcotest.failf "wrong line number %d" n
  | Ok _ -> Alcotest.fail "accepted bad third line"

let test_summarize_mentions_everything () =
  let tr = Trace.create () in
  let buf = Buffer.create 256 in
  Trace.set_sink tr (Some buf);
  Trace.emit tr ~layer:"core" ~kind:"deliver" ~node:1 ();
  Trace.emit tr ~layer:"core" ~kind:"deliver" ~node:2 ();
  Trace.Counter.add (Trace.counter tr "net.sent") 17;
  Trace.Gauge.set (Trace.gauge tr "group.total.seq_seen") 4;
  Trace.metrics_to_jsonl tr buf;
  let s = Report.summarize (lines_of buf) in
  let has sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "events per kind" true (has "core/deliver");
  Alcotest.(check bool) "counter row" true (has "net.sent");
  Alcotest.(check bool) "gauge row" true (has "group.total.seq_seen")

(* --- determinism -------------------------------------------------------- *)

(* One traced end-to-end run: mixed QoS pub/sub over a lossy net with a
   crash/recovery, all under a fixed seed. Returns the full JSONL
   output (events ++ metrics). *)
let traced_run ~seed () =
  let reg = stock_registry () in
  Registry.declare_class reg ~name:"CertifiedQuote" ~extends:"StockQuote"
    ~implements:[ "Certified" ] ();
  Registry.declare_class reg ~name:"TotalQuote" ~extends:"StockQuote"
    ~implements:[ "TotalOrder" ] ();
  let engine = Engine.create ~seed () in
  let tr = Trace.create ~clock:(fun () -> Engine.now engine) () in
  let buf = Buffer.create 4096 in
  Trace.set_sink tr (Some buf);
  Trace.set_detailed tr true;
  Trace.set_ambient tr;
  let net =
    Net.create ~config:{ Net.default_config with loss = 0.05 } engine
  in
  let domain = Domain.create reg net in
  let procs = Array.init 4 (fun _ -> Process.create domain (Net.add_node net)) in
  let sink = ref [] in
  let subs =
    [ Process.subscribe procs.(1) ~param:"StockObvent" (fun o -> sink := o :: !sink);
      Process.subscribe procs.(2) ~param:"CertifiedQuote" (fun o -> sink := o :: !sink);
      Process.subscribe procs.(3) ~param:"TotalQuote" (fun o -> sink := o :: !sink) ]
  in
  List.iter Subscription.activate subs;
  for i = 0 to 19 do
    let cls =
      match i mod 3 with 0 -> "StockQuote" | 1 -> "CertifiedQuote" | _ -> "TotalQuote"
    in
    Engine.schedule engine ~delay:(i * 500) (fun () ->
        Process.publish procs.(0)
          (Obvent.make reg cls
             [ "company", Value.Str "Acme"; "price", Value.Float (float_of_int i);
               "amount", Value.Int i ]))
  done;
  Engine.schedule engine ~delay:4000 (fun () -> Net.crash net 2);
  Engine.schedule engine ~delay:9000 (fun () ->
      Net.recover net 2;
      Process.resume procs.(2));
  Engine.run ~until:120_000 engine;
  Trace.metrics_to_jsonl tr buf;
  (* Restore a quiet ambient registry for other suites. *)
  Trace.set_ambient (Trace.create ());
  Buffer.contents buf

let test_trace_determinism_fixed_seed () =
  let a = traced_run ~seed:2024 () in
  let b = traced_run ~seed:2024 () in
  Alcotest.(check bool) "trace output non-trivial" true
    (String.length a > 1000);
  Alcotest.(check bool) "same seed, byte-identical JSONL" true
    (String.equal a b);
  (* And the whole thing validates. *)
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' a) in
  match Report.check lines with
  | Ok n -> Alcotest.(check bool) "many valid lines" true (n > 50)
  | Error (lineno, msg) -> Alcotest.failf "line %d invalid: %s" lineno msg

let test_different_seed_differs () =
  let a = traced_run ~seed:2024 () in
  let b = traced_run ~seed:2025 () in
  Alcotest.(check bool) "different seed changes the trace" false
    (String.equal a b)

let suite =
  ( "trace",
    [ Alcotest.test_case "stddev: Welford vs oracle at 1e12 offset" `Quick
        test_stddev_large_offset_oracle;
      Alcotest.test_case "stddev: degenerate sizes" `Quick
        test_stddev_small_samples;
      Alcotest.test_case "histogram summary stats" `Quick
        test_histogram_summary;
      Alcotest.test_case "counters and gauges" `Quick test_counters_and_gauges;
      Alcotest.test_case "exported JSONL validates" `Quick
        test_exported_jsonl_is_valid;
      Alcotest.test_case "check rejects malformed lines" `Quick
        test_check_rejects_malformed;
      Alcotest.test_case "summarize covers events/counters/gauges" `Quick
        test_summarize_mentions_everything;
      Alcotest.test_case "JSONL byte-identical under fixed seed" `Quick
        test_trace_determinism_fixed_seed;
      Alcotest.test_case "different seed produces different trace" `Quick
        test_different_seed_differs ] )
