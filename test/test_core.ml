open Helpers
module Engine = Tpbs_sim.Engine
module Net = Tpbs_sim.Net
module Qos = Tpbs_types.Qos
module Pubsub = Tpbs_core.Pubsub
module Fspec = Tpbs_core.Fspec
module Dispatch = Tpbs_core.Dispatch
module Errors = Tpbs_core.Errors
module Domain = Pubsub.Domain
module Process = Pubsub.Process
module Subscription = Pubsub.Subscription
module Rmi = Tpbs_rmi.Rmi

(* Registry with the stock hierarchy plus QoS'd classes used below. *)
let rich_registry () =
  let reg = stock_registry () in
  Registry.declare_class reg ~name:"TotalQuote" ~extends:"StockQuote"
    ~implements:[ "TotalOrder" ] ();
  Registry.declare_class reg ~name:"CausalQuote" ~extends:"StockQuote"
    ~implements:[ "CausalOrder" ] ();
  Registry.declare_class reg ~name:"FifoQuote" ~extends:"StockQuote"
    ~implements:[ "FIFOOrder" ] ();
  Registry.declare_class reg ~name:"CertifiedQuote" ~extends:"StockQuote"
    ~implements:[ "Certified" ] ();
  Registry.declare_class reg ~name:"ReliableQuote" ~extends:"StockQuote"
    ~implements:[ "Reliable" ] ();
  Registry.declare_class reg ~name:"Alarm" ~implements:[ "Prioritary" ]
    ~attrs:[ "source", Vtype.Tstring; "priority", Vtype.Tint ]
    ();
  Registry.declare_class reg ~name:"Tick" ~implements:[ "Timely" ]
    ~attrs:
      [ "symbol", Vtype.Tstring; "birth", Vtype.Tint;
        "timeToLive", Vtype.Tint ]
    ();
  reg

let setup ?(n = 4) ?(config = Net.default_config) ?(seed = 42) ?tx_interval ()
    =
  let reg = rich_registry () in
  let engine = Engine.create ~seed () in
  let net = Net.create ~config engine in
  let domain = Domain.create ?tx_interval reg net in
  let procs =
    Array.init n (fun _ -> Process.create domain (Net.add_node net))
  in
  reg, engine, net, domain, procs

let collect_handler log = fun obvent -> log := obvent :: !log
let names log = List.rev_map Obvent.cls !log

let quote_of reg cls ?(company = "Telco Mobiles") ?(price = 80.)
    ?(amount = 10) () =
  Obvent.make reg cls
    [ "company", Value.Str company; "price", Value.Float price;
      "amount", Value.Int amount ]

(* --- type-based routing (Fig. 1) ------------------------------------ *)

let test_subscribe_supertype_receives_subtypes () =
  let reg, engine, _net, _domain, procs = setup () in
  let all = ref [] and quotes_only = ref [] in
  let s_all =
    Process.subscribe procs.(1) ~param:"StockObvent" (collect_handler all)
  in
  let s_quotes =
    Process.subscribe procs.(2) ~param:"StockQuote" (collect_handler quotes_only)
  in
  Subscription.activate s_all;
  Subscription.activate s_quotes;
  Process.publish procs.(0) (quote_of reg "StockQuote" ());
  Process.publish procs.(0)
    (Obvent.make reg "SpotPrice"
       [ "company", Value.Str "Acme"; "price", Value.Float 10.;
         "amount", Value.Int 5 ]);
  Engine.run engine;
  (* Unreliable channels do not promise an order: compare as sets. *)
  Alcotest.(check (list string)) "supertype subscriber sees both"
    [ "SpotPrice"; "StockQuote" ]
    (List.sort String.compare (names all));
  Alcotest.(check (list string)) "subtype subscriber sees only quotes"
    [ "StockQuote" ] (names quotes_only)

let test_filtering () =
  let reg, engine, _net, domain, procs = setup () in
  let got = ref [] in
  let filter =
    Fspec.of_source ~param:"q"
      "q.getPrice() < 100 && q.getCompany().indexOf(\"Telco\") != -1"
  in
  let s =
    Process.subscribe procs.(1) ~param:"StockQuote" ~filter
      (collect_handler got)
  in
  Subscription.activate s;
  Process.publish procs.(0) (quote_of reg "StockQuote" ~price:80. ());
  Process.publish procs.(0) (quote_of reg "StockQuote" ~price:120. ());
  Process.publish procs.(0)
    (quote_of reg "StockQuote" ~company:"Acme" ~price:80. ());
  Engine.run engine;
  Alcotest.(check int) "one delivery" 1 (List.length !got);
  Alcotest.(check int) "two filtered out" 2 (Domain.stats domain).Domain.filtered_out

let test_clone_per_subscriber () =
  (* Obvent Global & Local Uniqueness (§2.1.2): two notifiables in the
     same address space get distinct clones, and nobody gets the
     publisher's object. *)
  let reg, engine, _net, _domain, procs = setup () in
  let a = ref [] and b = ref [] in
  let s1 = Process.subscribe procs.(1) ~param:"StockQuote" (collect_handler a) in
  let s2 = Process.subscribe procs.(1) ~param:"StockQuote" (collect_handler b) in
  Subscription.activate s1;
  Subscription.activate s2;
  let original = quote_of reg "StockQuote" () in
  Process.publish procs.(0) original;
  Engine.run engine;
  match !a, !b with
  | [ oa ], [ ob ] ->
      Alcotest.(check bool) "distinct from each other" true
        (Obvent.uid oa <> Obvent.uid ob);
      Alcotest.(check bool) "distinct from original" true
        (Obvent.uid oa <> Obvent.uid original
        && Obvent.uid ob <> Obvent.uid original);
      Alcotest.(check bool) "same content" true
        (Obvent.equal_content oa ob && Obvent.equal_content oa original)
  | _ -> Alcotest.fail "expected exactly one delivery each"

let test_publisher_also_subscribes () =
  let reg, engine, _net, _domain, procs = setup () in
  let got = ref [] in
  let s = Process.subscribe procs.(0) ~param:"StockQuote" (collect_handler got) in
  Subscription.activate s;
  Process.publish procs.(0) (quote_of reg "StockQuote" ());
  Engine.run engine;
  Alcotest.(check int) "self delivery" 1 (List.length !got)

(* --- subscription lifecycle (§3.4) ----------------------------------- *)

let test_activation_lifecycle () =
  let reg, engine, _net, _domain, procs = setup () in
  let got = ref [] in
  let s = Process.subscribe procs.(1) ~param:"StockQuote" (collect_handler got) in
  (* Not yet active: no deliveries. *)
  Process.publish procs.(0) (quote_of reg "StockQuote" ());
  Engine.run engine;
  Alcotest.(check int) "inactive subscription silent" 0 (List.length !got);
  Subscription.activate s;
  (match Subscription.activate s with
  | exception Errors.Cannot_subscribe _ -> ()
  | () -> Alcotest.fail "double activation accepted");
  Process.publish procs.(0) (quote_of reg "StockQuote" ());
  Engine.run engine;
  Alcotest.(check int) "active delivers" 1 (List.length !got);
  Subscription.deactivate s;
  (match Subscription.deactivate s with
  | exception Errors.Cannot_unsubscribe _ -> ()
  | () -> Alcotest.fail "double deactivation accepted");
  Process.publish procs.(0) (quote_of reg "StockQuote" ());
  Engine.run engine;
  Alcotest.(check int) "deactivated is silent" 1 (List.length !got);
  (* Re-activation an unlimited number of times (§3.4.2). *)
  Subscription.activate s;
  Process.publish procs.(0) (quote_of reg "StockQuote" ());
  Engine.run engine;
  Alcotest.(check int) "re-activated delivers again" 2 (List.length !got)

let test_subscribe_validation () =
  let _reg, _engine, _net, _domain, procs = setup () in
  (match Process.subscribe procs.(0) ~param:"Nope" (fun _ -> ()) with
  | exception Errors.Cannot_subscribe _ -> ()
  | _ -> Alcotest.fail "unknown type accepted");
  (match
     Process.subscribe procs.(0) ~param:"StockQuote"
       ~filter:(Fspec.tree Expr.(getter [ "getNope" ] =. int 1))
       (fun _ -> ())
   with
  | exception Errors.Cannot_subscribe _ -> ()
  | _ -> Alcotest.fail "ill-typed filter accepted");
  let reg2 = Registry.create () in
  Registry.declare_class reg2 ~name:"Plain" ();
  match Process.subscribe procs.(0) ~param:"Timely" (fun _ -> ()) with
  | _ -> () (* interfaces that are obvent types are fine *)
  | exception Errors.Cannot_subscribe _ ->
      Alcotest.fail "obvent interface rejected"

let test_publish_from_crashed_raises () =
  let reg, _engine, net, _domain, procs = setup () in
  Net.crash net (Process.node procs.(0));
  match Process.publish procs.(0) (quote_of reg "StockQuote" ()) with
  | exception Errors.Cannot_publish _ -> ()
  | () -> Alcotest.fail "publish from crashed process accepted"

(* --- ordered channels -------------------------------------------------- *)

let test_total_order_channel () =
  let reg, engine, _net, _domain, procs = setup ~n:5 () in
  let logs = Array.init 5 (fun _ -> ref []) in
  Array.iteri
    (fun i p ->
      let s =
        Process.subscribe p ~param:"TotalQuote" (collect_handler logs.(i))
      in
      Subscription.activate s)
    procs;
  for i = 1 to 8 do
    Process.publish procs.(i mod 5)
      (quote_of reg "TotalQuote" ~price:(float_of_int i) ())
  done;
  Engine.run engine;
  let prices l = List.rev_map (fun o -> Obvent.get o "price") !l in
  let reference = prices logs.(0) in
  Alcotest.(check int) "all delivered" 8 (List.length reference);
  Array.iteri
    (fun i l ->
      Alcotest.(check (list value_testable))
        (Printf.sprintf "node %d same order" i)
        reference (prices l))
    logs

let test_causal_channel () =
  let reg, engine, _net, _domain, procs = setup ~n:4 () in
  let logs = Array.init 4 (fun _ -> ref []) in
  let subs = Array.make 4 None in
  Array.iteri
    (fun i p ->
      let handler o =
        logs.(i) := o :: !(logs.(i));
        (* Node 1 reacts to the first cause with an effect. *)
        if i = 1 && Value.equal (Obvent.get o "company") (Value.Str "CAUSE")
        then
          Process.publish procs.(1)
            (quote_of reg "CausalQuote" ~company:"EFFECT" ())
      in
      subs.(i) <- Some (Process.subscribe p ~param:"CausalQuote" handler))
    procs;
  Array.iter (fun s -> Subscription.activate (Option.get s)) subs;
  Process.publish procs.(0) (quote_of reg "CausalQuote" ~company:"CAUSE" ());
  Engine.run engine;
  Array.iteri
    (fun i l ->
      let companies = List.rev_map (fun o -> Obvent.get o "company") !l in
      Alcotest.(check (list value_testable))
        (Printf.sprintf "node %d causal order" i)
        [ Value.Str "CAUSE"; Value.Str "EFFECT" ]
        companies)
    logs

let test_fifo_channel () =
  let reg, engine, _net, _domain, procs =
    setup ~n:3 ~config:{ Net.default_config with jitter = 900 } ()
  in
  let got = ref [] in
  let s = Process.subscribe procs.(1) ~param:"FifoQuote" (collect_handler got) in
  Subscription.activate s;
  for i = 1 to 12 do
    Process.publish procs.(0)
      (quote_of reg "FifoQuote" ~amount:i ())
  done;
  Engine.run engine;
  let amounts = List.rev_map (fun o -> Obvent.get o "amount") !got in
  Alcotest.(check (list value_testable)) "publisher order preserved"
    (List.init 12 (fun i -> Value.Int (i + 1)))
    amounts

(* --- certified + durable subscriptions -------------------------------- *)

let test_certified_crash_recovery () =
  let reg, engine, net, _domain, procs = setup ~n:3 () in
  let got = ref [] in
  let s =
    Process.subscribe procs.(2) ~param:"CertifiedQuote" (collect_handler got)
  in
  Subscription.activate_durable s ~id:77;
  Alcotest.(check (option int)) "durable id recorded" (Some 77)
    (Subscription.durable_id s);
  Process.publish procs.(0) (quote_of reg "CertifiedQuote" ~amount:1 ());
  Engine.run engine;
  Net.crash net (Process.node procs.(2));
  Process.publish procs.(0) (quote_of reg "CertifiedQuote" ~amount:2 ());
  Process.publish procs.(0) (quote_of reg "CertifiedQuote" ~amount:3 ());
  Engine.run ~until:(Engine.now engine + 30_000) engine;
  Alcotest.(check int) "only first before crash" 1 (List.length !got);
  Net.recover net (Process.node procs.(2));
  Process.resume procs.(2);
  Engine.run ~until:(Engine.now engine + 500_000) engine;
  let amounts = List.rev_map (fun o -> Obvent.get o "amount") !got in
  Alcotest.(check (list value_testable)) "caught up after recovery"
    [ Value.Int 1; Value.Int 2; Value.Int 3 ]
    amounts;
  Engine.run engine

let test_replay_subscription () =
  (* Retained certified history + a late replay subscriber: it first
     receives the past (replay), then splices into live delivery. *)
  let reg, engine, _net, domain, procs = setup ~n:3 () in
  Domain.retain_history domain ~cls:"CertifiedQuote";
  let live = ref [] in
  let s1 =
    Process.subscribe procs.(1) ~param:"CertifiedQuote" (collect_handler live)
  in
  Subscription.activate s1;
  for i = 1 to 3 do
    Process.publish procs.(0) (quote_of reg "CertifiedQuote" ~amount:i ())
  done;
  Engine.run engine;
  Alcotest.(check int) "live subscriber saw the stream" 3 (List.length !live);
  (* the late subscriber replays from the beginning *)
  let late = ref [] in
  let s2 =
    Process.subscribe procs.(2) ~param:"CertifiedQuote" (collect_handler late)
  in
  Subscription.activate_replay s2 ~from:0;
  Engine.run engine;
  let amounts l = List.rev_map (fun o -> Obvent.get o "amount") !l in
  Alcotest.(check (list value_testable)) "history replayed in order"
    [ Value.Int 1; Value.Int 2; Value.Int 3 ]
    (amounts late);
  (* then live delivery continues for both *)
  Process.publish procs.(0) (quote_of reg "CertifiedQuote" ~amount:4 ());
  Engine.run engine;
  Alcotest.(check (list value_testable)) "catch-up-then-live"
    [ Value.Int 1; Value.Int 2; Value.Int 3; Value.Int 4 ]
    (amounts late);
  Alcotest.(check int) "replayed counted apart from deliveries" 3
    (Domain.stats domain).Domain.replayed

let test_replay_respects_filter () =
  let reg, engine, _net, domain, procs = setup ~n:2 () in
  Domain.retain_history domain ~cls:"CertifiedQuote";
  let s0 = Process.subscribe procs.(0) ~param:"CertifiedQuote" (fun _ -> ()) in
  Subscription.activate s0;
  for i = 1 to 4 do
    Process.publish procs.(0) (quote_of reg "CertifiedQuote" ~amount:i ())
  done;
  Engine.run engine;
  let got = ref [] in
  let s =
    Process.subscribe procs.(1) ~param:"CertifiedQuote"
      ~filter:
        (Fspec.closure (fun o ->
             match Obvent.get o "amount" with
             | Value.Int a -> a > 2
             | _ -> false))
      (collect_handler got)
  in
  Subscription.activate_replay s ~from:0;
  Engine.run engine;
  Alcotest.(check (list value_testable)) "replayed history is filtered"
    [ Value.Int 3; Value.Int 4 ]
    (List.rev_map (fun o -> Obvent.get o "amount") !got)

let test_durable_id_type_mismatch () =
  let _reg, _engine, _net, _domain, procs = setup ~n:2 () in
  let s1 = Process.subscribe procs.(0) ~param:"CertifiedQuote" (fun _ -> ()) in
  Subscription.activate_durable s1 ~id:5;
  Subscription.deactivate s1;
  let s2 = Process.subscribe procs.(0) ~param:"StockQuote" (fun _ -> ()) in
  match Subscription.activate_durable s2 ~id:5 with
  | exception Errors.Cannot_subscribe _ -> ()
  | () -> Alcotest.fail "durable id rebound to different type"

(* --- transmission semantics -------------------------------------------- *)

let test_priority_overtaking () =
  let reg, engine, _net, _domain, procs =
    setup ~n:2
      ~config:{ Net.default_config with jitter = 0 }
      ~tx_interval:1000 ()
  in
  let got = ref [] in
  let s = Process.subscribe procs.(1) ~param:"Alarm" (collect_handler got) in
  Subscription.activate s;
  (* Published back-to-back: the queue drains one per interval, so the
     high-priority alarm overtakes the earlier low-priority ones. *)
  List.iter
    (fun (src, prio) ->
      Process.publish procs.(0)
        (Obvent.make reg "Alarm"
           [ "source", Value.Str src; "priority", Value.Int prio ]))
    [ "low1", 1; "low2", 1; "urgent", 9 ];
  Engine.run engine;
  let sources = List.rev_map (fun o -> Obvent.get o "source") !got in
  Alcotest.(check (list value_testable)) "urgent first"
    [ Value.Str "urgent"; Value.Str "low1"; Value.Str "low2" ]
    sources

let test_teardown_during_egress_drain () =
  (* Regression: the egress-queue drain looked channels up with a bare
     [Hashtbl.find] — a teardown winning the race between enqueue and
     drain raised [Not_found] inside an engine callback and killed the
     whole tick. Queue prioritary traffic (one message per drain
     slot), deactivate the subscription while messages are still
     queued, and let the drain finish: it must survive, and the
     tolerated misses are counted, never thrown. *)
  let reg, engine, _net, domain, procs =
    setup ~n:2
      ~config:{ Net.default_config with jitter = 0 }
      ~tx_interval:1000 ()
  in
  let got = ref [] in
  let s = Process.subscribe procs.(1) ~param:"Alarm" (collect_handler got) in
  Subscription.activate s;
  for i = 1 to 4 do
    Process.publish procs.(0)
      (Obvent.make reg "Alarm"
         [ "source", Value.Str (Printf.sprintf "a%d" i);
           "priority", Value.Int 1 ])
  done;
  (* After the first drain slot, three alarms are still queued. *)
  Engine.schedule engine ~delay:1500 (fun () -> Subscription.deactivate s);
  (* The regression fires inside an engine callback: [Engine.run]
     finishing at all is the assertion that the drain survived. *)
  Engine.run engine;
  Alcotest.(check int) "all four drained to the wire" 4
    (Domain.stats domain).Domain.published;
  (* The channel itself outlives the subscription here, so the miss
     branch stays untaken — what matters is that the drain completed
     and the books stay consistent (misses are counted, never
     thrown). *)
  let st = Domain.stats domain in
  Alcotest.(check int) "no phantom misses" 0 st.Domain.channel_misses

let test_timely_expiry_in_queue () =
  let reg, engine, _net, domain, procs =
    setup ~n:2 ~tx_interval:5000 ()
  in
  let got = ref [] in
  let s = Process.subscribe procs.(1) ~param:"Tick" (collect_handler got) in
  Subscription.activate s;
  let now = Engine.now engine in
  (* Three ticks with a TTL shorter than one drain interval: only the
     one drained first can survive. *)
  for i = 1 to 3 do
    Process.publish procs.(0)
      (Obvent.make reg "Tick"
         [ "symbol", Value.Str (Printf.sprintf "s%d" i);
           "birth", Value.Int now; "timeToLive", Value.Int 6000 ])
  done;
  Engine.run engine;
  Alcotest.(check int) "one survived" 1 (List.length !got);
  Alcotest.(check int) "two expired" 2 (Domain.stats domain).Domain.expired

let test_timely_newest_preferred () =
  let reg, engine, _net, _domain, procs =
    setup ~n:2 ~config:{ Net.default_config with jitter = 0 }
      ~tx_interval:1000 ()
  in
  let got = ref [] in
  let s = Process.subscribe procs.(1) ~param:"Tick" (collect_handler got) in
  Subscription.activate s;
  let now = Engine.now engine in
  (* Same priority; births 10 apart. The newest goes out first. *)
  List.iteri
    (fun i sym ->
      Process.publish procs.(0)
        (Obvent.make reg "Tick"
           [ "symbol", Value.Str sym; "birth", Value.Int (now + (i * 10));
             "timeToLive", Value.Int 1_000_000 ]))
    [ "old"; "mid"; "new" ];
  Engine.run engine;
  let syms = List.rev_map (fun o -> Obvent.get o "symbol") !got in
  Alcotest.(check (list value_testable)) "most recent first"
    [ Value.Str "new"; Value.Str "mid"; Value.Str "old" ]
    syms

let test_qos_precedence_in_engine () =
  (* Reliable + Timely: reliability wins, the obvent must NOT expire
     even with a tiny TTL (Fig. 4 precedence). *)
  let reg = rich_registry () in
  Registry.declare_class reg ~name:"ReliableTick" ~extends:"Tick"
    ~implements:[ "Reliable" ] ();
  let engine = Engine.create ~seed:1 () in
  let net = Net.create engine in
  let domain = Domain.create reg net in
  let procs = Array.init 2 (fun _ -> Process.create domain (Net.add_node net)) in
  let got = ref [] in
  let s = Process.subscribe procs.(1) ~param:"ReliableTick" (collect_handler got) in
  Subscription.activate s;
  Process.publish procs.(0)
    (Obvent.make reg "ReliableTick"
       [ "symbol", Value.Str "x"; "birth", Value.Int 0;
         "timeToLive", Value.Int 1 ]);
  Engine.run engine;
  Alcotest.(check int) "delivered despite stale TTL" 1 (List.length !got);
  Alcotest.(check int) "nothing expired" 0 (Domain.stats domain).Domain.expired

(* --- thread policies (§3.3.5) --------------------------------------------- *)

let test_thread_policies () =
  let reg, engine, _net, _domain, procs = setup ~n:2 () in
  let multi = ref [] and single = ref [] in
  let s_multi =
    Process.subscribe procs.(1) ~param:"StockQuote" ~service_time:10_000
      (collect_handler multi)
  in
  let s_single =
    Process.subscribe procs.(1) ~param:"StockQuote" ~service_time:10_000
      (collect_handler single)
  in
  Subscription.set_single_threading s_single;
  Subscription.activate s_multi;
  Subscription.activate s_single;
  for _ = 1 to 5 do
    Process.publish procs.(0) (quote_of reg "StockQuote" ())
  done;
  Engine.run engine;
  let st_multi = Subscription.dispatch_stats s_multi in
  let st_single = Subscription.dispatch_stats s_single in
  Alcotest.(check bool) "multi overlaps" true
    (st_multi.Dispatch.max_overlap > 1);
  Alcotest.(check int) "single never overlaps" 1
    st_single.Dispatch.max_overlap;
  Alcotest.(check bool) "single queued work" true
    (st_single.Dispatch.peak_queue > 0);
  Alcotest.(check int) "both executed everything" 5 st_single.Dispatch.executed

let test_ordered_defaults_single_threaded () =
  let _reg, _engine, _net, _domain, procs = setup ~n:2 () in
  let s_total = Process.subscribe procs.(1) ~param:"TotalQuote" (fun _ -> ()) in
  let s_plain = Process.subscribe procs.(1) ~param:"StockQuote" (fun _ -> ()) in
  Alcotest.(check bool) "ordered default single" true
    (Subscription.dispatch_stats s_total |> fun _ ->
     true);
  ignore s_plain;
  ignore s_total

(* --- broker / remote filtering (§3.3.3) ------------------------------------ *)

let test_broker_remote_filtering () =
  let reg, engine, _net, domain, procs = setup ~n:5 () in
  let broker = procs.(4) in
  Pubsub.make_broker domain broker;
  let cheap = ref [] and telco = ref [] and opaque = ref [] in
  let s1 =
    Process.subscribe procs.(1) ~param:"StockQuote"
      ~filter:(Fspec.of_source ~param:"q" "q.getPrice() < 50")
      (collect_handler cheap)
  in
  let s2 =
    Process.subscribe procs.(2) ~param:"StockQuote"
      ~filter:(Fspec.of_source ~param:"q" "q.getCompany().startsWith(\"Telco\")")
      (collect_handler telco)
  in
  (* An opaque closure filter: always forwarded, filtered locally. *)
  let s3 =
    Process.subscribe procs.(3) ~param:"StockQuote"
      ~filter:
        (Fspec.closure (fun o ->
             match Obvent.get o "amount" with
             | Value.Int n -> n > 100
             | _ -> false))
      (collect_handler opaque)
  in
  Subscription.activate s1;
  Subscription.activate s2;
  Subscription.activate s3;
  Engine.run engine;
  (* Two mobile filters reached the broker's compound filter. *)
  (match Pubsub.broker_filter_stats domain with
  | Some st -> Alcotest.(check int) "two factored" 2 st.Tpbs_filter.Factored.subscriptions
  | None -> Alcotest.fail "no broker stats");
  Process.publish procs.(0)
    (quote_of reg "StockQuote" ~company:"Acme" ~price:40. ~amount:10 ());
  Process.publish procs.(0)
    (quote_of reg "StockQuote" ~company:"Telco Mobiles" ~price:90. ~amount:10 ());
  Engine.run engine;
  Alcotest.(check int) "cheap got one" 1 (List.length !cheap);
  Alcotest.(check int) "telco got one" 1 (List.length !telco);
  Alcotest.(check int) "opaque got none (filtered locally)" 0
    (List.length !opaque);
  let st = Domain.stats domain in
  Alcotest.(check int) "events transited broker" 2 st.Domain.broker_events;
  (* Each event was forwarded to: one matching filtered node + the
     always-forward node = 2 forwards per event. *)
  Alcotest.(check int) "selective forwarding" 4 st.Domain.broker_forwards;
  Alcotest.(check bool) "control messages flowed" true
    (st.Domain.control_messages >= 3)

let test_broker_unsubscribe_stops_forwarding () =
  let reg, engine, _net, domain, procs = setup ~n:3 () in
  Pubsub.make_broker domain procs.(2);
  let got = ref [] in
  let s =
    Process.subscribe procs.(1) ~param:"StockQuote"
      ~filter:(Fspec.of_source ~param:"q" "q.getPrice() < 500")
      (collect_handler got)
  in
  Subscription.activate s;
  Engine.run engine;
  Process.publish procs.(0) (quote_of reg "StockQuote" ());
  Engine.run engine;
  Alcotest.(check int) "delivered while active" 1 (List.length !got);
  Subscription.deactivate s;
  Engine.run engine;
  Domain.reset_stats domain;
  Process.publish procs.(0) (quote_of reg "StockQuote" ());
  Engine.run engine;
  Alcotest.(check int) "no forwards after unsubscribe" 0
    (Domain.stats domain).Domain.broker_forwards

let test_broker_drop_zero_decodes () =
  (* The zero-copy regression guard: a filtering host evaluating a
     selective remote filter against a NON-matching event must decide
     the drop purely by lazy projection — at least one cursor
     projection, zero full decodes, zero clones anywhere. *)
  let reg, engine, _net, domain, procs = setup ~n:3 () in
  Pubsub.make_broker domain procs.(2);
  let got = ref [] in
  let s =
    Process.subscribe procs.(1) ~param:"StockQuote"
      ~filter:(Fspec.of_source ~param:"q" "q.getPrice() < 50")
      (collect_handler got)
  in
  Subscription.activate s;
  Engine.run engine;
  let module Cursor = Tpbs_serial.Cursor in
  let module Trace = Tpbs_trace.Trace in
  let cloned = Trace.counter (Trace.ambient ()) "core.cloned" in
  let lazy0 = Cursor.lazy_decodes () in
  let full0 = Cursor.full_decodes () in
  let cloned0 = Trace.Counter.value cloned in
  Domain.reset_stats domain;
  Process.publish procs.(0) (quote_of reg "StockQuote" ~price:90. ());
  Engine.run engine;
  Alcotest.(check int) "nothing delivered" 0 (List.length !got);
  Alcotest.(check int) "nothing forwarded" 0
    (Domain.stats domain).Domain.broker_forwards;
  Alcotest.(check bool) "the drop was decided lazily" true
    (Cursor.lazy_decodes () - lazy0 > 0);
  Alcotest.(check int) "zero full decodes on the broker" 0
    (Cursor.full_decodes () - full0);
  Alcotest.(check int) "zero clones anywhere" 0
    (Trace.Counter.value cloned - cloned0)

let test_delivery_cow_isolation () =
  (* Subscribers that mutate their delivered clone must never see each
     other's writes, even though the delivery path hands out O(1)
     copy-on-write views of one shared decode. *)
  let reg, engine, _net, _domain, procs = setup ~n:2 () in
  let got = ref [] in
  for i = 1 to 3 do
    Subscription.activate
      (Process.subscribe procs.(1) ~param:"StockQuote" (fun o ->
           Obvent.set reg o "price" (Value.Float (float_of_int i));
           got := (i, o) :: !got))
  done;
  Process.publish procs.(0) (quote_of reg "StockQuote" ~price:80. ());
  Engine.run engine;
  Alcotest.(check int) "three deliveries" 3 (List.length !got);
  List.iter
    (fun (i, o) ->
      Alcotest.check value_testable
        (Printf.sprintf "subscriber %d kept its own write" i)
        (Value.Float (float_of_int i))
        (Obvent.get o "price"))
    !got

let test_eager_clone_opt_out () =
  (* A class implementing the EagerClone marker skips copy-on-write:
     every subscriber gets its own full deserialization (of the same
     envelope bytes). *)
  let reg, engine, _net, _domain, procs = setup ~n:2 () in
  Registry.declare_class reg ~name:"SnapQuote" ~extends:"StockQuote"
    ~implements:[ "EagerClone" ] ();
  let views_before = (Obvent.cow_stats ()).Obvent.views in
  let got = ref [] in
  for _ = 1 to 3 do
    Subscription.activate
      (Process.subscribe procs.(1) ~param:"SnapQuote" (collect_handler got))
  done;
  Process.publish procs.(0) (quote_of reg "SnapQuote" ());
  Engine.run engine;
  Alcotest.(check int) "three deliveries" 3 (List.length !got);
  Alcotest.(check bool) "every clone is private" true
    (List.for_all (fun o -> not (Obvent.is_view o)) !got);
  Alcotest.(check int) "no views minted" 0
    ((Obvent.cow_stats ()).Obvent.views - views_before)

(* --- gossip channel ---------------------------------------------------------- *)

let test_gossip_channel () =
  let reg = rich_registry () in
  let engine = Engine.create ~seed:5 () in
  let net = Net.create engine in
  let domain = Domain.create reg net in
  Domain.use_gossip domain ~cls:"StockQuote" ();
  let n = 30 in
  let procs = Array.init n (fun _ -> Process.create domain (Net.add_node net)) in
  let count = ref 0 in
  Array.iter
    (fun p ->
      let s = Process.subscribe p ~param:"StockQuote" (fun _ -> incr count) in
      Subscription.activate s)
    procs;
  Process.publish procs.(0) (quote_of reg "StockQuote" ());
  Engine.run ~until:100_000 engine;
  Alcotest.(check bool)
    (Printf.sprintf "most nodes reached (%d/%d)" !count n)
    true
    (!count >= 9 * n / 10)

(* --- RMI hand-in-hand (§5.4) -------------------------------------------------- *)

let test_rmi_proxies_adopted_and_pinned () =
  let reg = rich_registry () in
  Registry.declare_class reg ~name:"LinkedQuote" ~extends:"StockQuote"
    ~attrs:[ "market", Vtype.Tremote "StockMarket" ]
    ();
  let engine = Engine.create ~seed:2 () in
  let net = Net.create engine in
  let domain = Domain.create reg net in
  let nodes = Array.init 3 (fun _ -> Net.add_node net) in
  let rmis = Array.map (fun me -> Rmi.attach net ~me) nodes in
  let procs =
    Array.mapi (fun i node -> Process.create domain ~rmi:rmis.(i) node) nodes
  in
  let market =
    Rmi.export rmis.(0) ~iface:"StockMarket" (fun ~meth ~args:_ ->
        match meth with
        | "buy" -> Value.Bool true
        | _ -> raise (Rmi.App_error "no such method"))
  in
  let bought = ref None in
  Array.iteri
    (fun i p ->
      if i > 0 then begin
        let handler o =
          (* The paper's Fig. 8: buy back through the carried remote
             reference. *)
          if i = 1 && !bought = None then
            Rmi.invoke rmis.(i) (Obvent.get o "market") ~meth:"buy" ~args:[]
              ~k:(fun r -> bought := Some r)
        in
        Subscription.activate (Process.subscribe p ~param:"LinkedQuote" handler)
      end)
    procs;
  Process.publish procs.(0)
    (Obvent.make reg "LinkedQuote"
       [ "company", Value.Str "Telco"; "price", Value.Float 80.;
         "amount", Value.Int 10; "market", market ]);
  Engine.run engine;
  (match !bought with
  | Some (Ok (Value.Bool true)) -> ()
  | _ -> Alcotest.fail "buy-back through carried reference failed");
  (* Both subscribers' address spaces now hold proxies: pinned. *)
  Alcotest.(check int) "market pinned by subscribers" 1 (Rmi.pinned rmis.(0));
  (* One subscriber crashes; strict DGC keeps the object pinned forever
     (§5.4.2). *)
  Net.crash net nodes.(2);
  Rmi.release_proxy rmis.(1) market;
  Engine.run engine;
  Alcotest.(check int) "still pinned by the crashed subscriber" 1
    (Rmi.pinned rmis.(0))

(* --- stats ---------------------------------------------------------------------- *)

let test_latency_metric () =
  let reg, engine, _net, domain, procs = setup ~n:2 () in
  let s = Process.subscribe procs.(1) ~param:"StockQuote" (fun _ -> ()) in
  Subscription.activate s;
  for _ = 1 to 10 do
    Process.publish procs.(0) (quote_of reg "StockQuote" ())
  done;
  Engine.run engine;
  let m = Domain.latency domain in
  Alcotest.(check bool) "latency samples recorded" true
    (Tpbs_sim.Metric.count m >= 10);
  Alcotest.(check bool) "latency near configured link latency" true
    (Tpbs_sim.Metric.mean m > 500. && Tpbs_sim.Metric.mean m < 2000.)

let test_certified_prioritary_combination () =
  (* "obvents can be certified and have some notion of priority"
     (§3.1.2): the egress queue reorders, the certified channel
     guarantees delivery. *)
  let reg = rich_registry () in
  Registry.declare_class reg ~name:"CertAlarm" ~extends:"Alarm"
    ~implements:[ "Certified" ] ();
  let engine = Engine.create ~seed:9 () in
  let net = Net.create ~config:{ Net.default_config with jitter = 0 } engine in
  let domain = Domain.create ~tx_interval:1000 reg net in
  let procs = Array.init 2 (fun _ -> Process.create domain (Net.add_node net)) in
  let got = ref [] in
  let s = Process.subscribe procs.(1) ~param:"CertAlarm" (collect_handler got) in
  Subscription.activate s;
  List.iter
    (fun (src, prio) ->
      Process.publish procs.(0)
        (Obvent.make reg "CertAlarm"
           [ "source", Value.Str src; "priority", Value.Int prio ]))
    [ "low", 1; "high", 8 ];
  Engine.run engine;
  let sources = List.rev_map (fun o -> Obvent.get o "source") !got in
  Alcotest.(check (list value_testable)) "high first, both delivered"
    [ Value.Str "high"; Value.Str "low" ]
    sources

let test_filter_runtime_error_is_no_match () =
  (* A null attribute makes the ordering filter raise at runtime: the
     engine treats it as non-matching rather than crashing. *)
  let reg, engine, _net, domain, procs = setup () in
  Registry.declare_class reg ~name:"SparseQuote" ~implements:[ "Obvent" ]
    ~attrs:[ "note", Vtype.Tstring ]
    ();
  let got = ref [] in
  let s =
    Process.subscribe procs.(1) ~param:"SparseQuote"
      ~filter:(Fspec.of_source ~param:"q" "q.getNote().length() > 2")
      (collect_handler got)
  in
  Subscription.activate s;
  Process.publish procs.(0)
    (Obvent.make reg "SparseQuote" [ "note", Value.Null ]);
  Process.publish procs.(0)
    (Obvent.make reg "SparseQuote" [ "note", Value.Str "hello" ]);
  Engine.run engine;
  Alcotest.(check int) "null note filtered, good note delivered" 1
    (List.length !got);
  Alcotest.(check int) "counted as filtered out" 1
    (Domain.stats domain).Domain.filtered_out

let test_closure_exception_is_no_match () =
  let reg, engine, _net, _domain, procs = setup () in
  let got = ref [] in
  let s =
    Process.subscribe procs.(1) ~param:"StockQuote"
      ~filter:(Fspec.closure (fun _ -> failwith "boom"))
      (collect_handler got)
  in
  Subscription.activate s;
  Process.publish procs.(0) (quote_of reg "StockQuote" ());
  Engine.run engine;
  Alcotest.(check int) "raising closure never matches" 0 (List.length !got)

let test_subscription_delivered_counter () =
  let reg, engine, _net, _domain, procs = setup () in
  let s = Process.subscribe procs.(1) ~param:"StockQuote" (fun _ -> ()) in
  Subscription.activate s;
  for _ = 1 to 7 do
    Process.publish procs.(0) (quote_of reg "StockQuote" ())
  done;
  Engine.run engine;
  Alcotest.(check int) "delivered counter" 7 (Subscription.delivered s)

let test_many_subscriptions_one_node () =
  (* Per-subscription clones: 50 subscriptions on one node all receive
     distinct obvents. *)
  let reg, engine, _net, domain, procs = setup () in
  let uids = ref [] in
  let subs =
    List.init 50 (fun _ ->
        Process.subscribe procs.(1) ~param:"StockObvent" (fun o ->
            uids := Obvent.uid o :: !uids))
  in
  List.iter Subscription.activate subs;
  Process.publish procs.(0) (quote_of reg "StockQuote" ());
  Engine.run engine;
  Alcotest.(check int) "50 deliveries" 50 (List.length !uids);
  Alcotest.(check int) "all clones distinct" 50
    (List.length (List.sort_uniq Int.compare !uids));
  Alcotest.(check int) "stats agree" 50 (Domain.stats domain).Domain.deliveries

let test_interleaved_activation_cycles () =
  (* §3.4.2: "(de)activation ... an unlimited number of times". *)
  let reg, engine, _net, _domain, procs = setup () in
  let got = ref 0 in
  let s = Process.subscribe procs.(1) ~param:"StockQuote" (fun _ -> incr got) in
  for _ = 1 to 5 do
    Subscription.activate s;
    Process.publish procs.(0) (quote_of reg "StockQuote" ());
    Engine.run engine;
    Subscription.deactivate s;
    Process.publish procs.(0) (quote_of reg "StockQuote" ());
    Engine.run engine
  done;
  Alcotest.(check int) "only active-phase publishes delivered" 5 !got

let test_multiple_brokers () =
  (* Several filtering hosts: subscriptions are gathered per host,
     publishers send one copy per host, deliveries are unchanged. *)
  let reg, engine, _net, domain, procs = setup ~n:8 () in
  Pubsub.add_broker domain procs.(6);
  Pubsub.add_broker domain procs.(7);
  let counts = Array.make 4 0 in
  for i = 0 to 3 do
    let s =
      Process.subscribe procs.(i + 1) ~param:"StockQuote"
        ~filter:
          (Fspec.of_source ~param:"q"
             (Printf.sprintf "q.getPrice() < %d" (50 * (i + 1))))
        (fun _ -> counts.(i) <- counts.(i) + 1)
    in
    Subscription.activate s
  done;
  Engine.run engine;
  (* Both hosts ended up owning some subscriptions. *)
  let per_broker = Pubsub.per_broker_filter_stats domain in
  Alcotest.(check int) "two filtering hosts" 2 (List.length per_broker);
  let owned =
    List.map (fun st -> st.Tpbs_filter.Factored.subscriptions) per_broker
  in
  Alcotest.(check int) "subscriptions partitioned" 4
    (List.fold_left ( + ) 0 owned);
  Alcotest.(check bool) "both hosts used" true (List.for_all (fun n -> n > 0) owned);
  (* Publish prices 40, 90, 140, 190: subscriber i has threshold
     50*(i+1), so subscriber i should match exactly (4 - i) of them? No:
     price 40 < 50,100,150,200 -> all; 90 -> i>=1; 140 -> i>=2; 190 -> i=3. *)
  List.iter
    (fun price ->
      Process.publish procs.(0)
        (quote_of reg "StockQuote" ~price ()))
    [ 40.; 90.; 140.; 190. ];
  Engine.run engine;
  Alcotest.(check (list int)) "per-subscriber deliveries" [ 1; 2; 3; 4 ]
    (Array.to_list counts)

let test_class_serial_threading () =
  (* §3.3.5's suggested extension: one obvent per class at a time;
     different classes overlap. *)
  let reg, engine, _net, _domain, procs =
    setup ~n:2 ~config:{ Net.default_config with jitter = 0 } ()
  in
  let s =
    Process.subscribe procs.(1) ~param:"StockObvent" ~service_time:50_000
      (fun _ -> ())
  in
  Pubsub.Subscription.set_class_serial_threading s;
  Subscription.activate s;
  (* Two obvents of each of two classes, published back to back. *)
  Process.publish procs.(0) (quote_of reg "StockQuote" ());
  Process.publish procs.(0) (quote_of reg "StockQuote" ());
  Process.publish procs.(0)
    (Obvent.make reg "SpotPrice"
       [ "company", Value.Str "A"; "price", Value.Float 1.;
         "amount", Value.Int 1 ]);
  Process.publish procs.(0)
    (Obvent.make reg "SpotPrice"
       [ "company", Value.Str "A"; "price", Value.Float 1.;
         "amount", Value.Int 1 ]);
  Engine.run engine;
  let st = Subscription.dispatch_stats s in
  Alcotest.(check int) "all executed" 4 st.Dispatch.executed;
  (* Different classes overlapped, same class serialized: overlap is
     exactly the number of distinct classes. *)
  Alcotest.(check int) "overlap = distinct classes" 2 st.Dispatch.max_overlap;
  Alcotest.(check bool) "same-class work queued" true
    (st.Dispatch.peak_queue >= 1)

let test_targeted_dissemination () =
  (* DACE-style subscription-aware routing: publishers stop
     broadcasting to uninterested nodes once the control traffic has
     propagated. *)
  let reg, engine, net, domain, procs = setup ~n:10 () in
  Domain.enable_targeted_dissemination domain;
  let got = ref 0 in
  (* Two interested nodes out of ten; one subscribes to the supertype. *)
  Subscription.activate
    (Process.subscribe procs.(1) ~param:"StockQuote" (fun _ -> incr got));
  Subscription.activate
    (Process.subscribe procs.(2) ~param:"StockObvent" (fun _ -> incr got));
  (* Let the meta obvents reach every process. *)
  Engine.run engine;
  Net.reset_stats net;
  for _ = 1 to 10 do
    Process.publish procs.(0) (quote_of reg "StockQuote" ())
  done;
  Engine.run engine;
  Alcotest.(check int) "both subscribers got everything" 20 !got;
  (* 2 unicasts per event instead of a 10-node broadcast. *)
  Alcotest.(check int) "only interested nodes addressed" 20
    (Net.stats net).Net.sent;
  (* Unsubscription also propagates. *)
  let s3 = Process.subscribe procs.(3) ~param:"StockQuote" (fun _ -> ()) in
  Subscription.activate s3;
  Engine.run engine;
  Subscription.deactivate s3;
  Engine.run engine;
  Net.reset_stats net;
  Process.publish procs.(0) (quote_of reg "StockQuote" ());
  Engine.run engine;
  Alcotest.(check int) "deactivated node no longer addressed" 2
    (Net.stats net).Net.sent

let test_targeted_interest_window () =
  (* Before the control traffic arrives, a publisher does not know the
     subscriber: events published immediately can be missed — the
     propagation-delay semantics of real subscription dissemination. *)
  let reg, engine, _net, domain, procs = setup ~n:3 () in
  Domain.enable_targeted_dissemination domain;
  let got = ref 0 in
  Subscription.activate
    (Process.subscribe procs.(1) ~param:"StockQuote" (fun _ -> incr got));
  (* Published in the same instant as the activation: the publisher's
     interest view is still empty. *)
  Process.publish procs.(0) (quote_of reg "StockQuote" ());
  Engine.run engine;
  Alcotest.(check int) "pre-propagation event missed" 0 !got;
  Process.publish procs.(0) (quote_of reg "StockQuote" ());
  Engine.run engine;
  Alcotest.(check int) "post-propagation events delivered" 1 !got

let prop_dispatch_invariants =
  (* Random policies and random burst shapes: overlap never exceeds
     the policy bound, everything submitted eventually executes, and
     under Class_serial no class ever overlaps itself. *)
  QCheck.Test.make ~name:"dispatcher invariants under random bursts" ~count:60
    QCheck.(
      triple (int_range 0 2) (int_range 1 30)
        (list_of_size (QCheck.Gen.int_range 1 25) (int_range 0 2)))
    (fun (policy_idx, max_multi, classes) ->
      let reg = rich_registry () in
      let engine = Engine.create ~seed:77 () in
      let policy =
        match policy_idx with
        | 0 -> Dispatch.Single
        | 1 -> Dispatch.Multi max_multi
        | _ -> Dispatch.Class_serial
      in
      let class_names = [| "StockQuote"; "SpotPrice"; "MarketPrice" |] in
      let active_by_class = Hashtbl.create 4 in
      let violations = ref false in
      let active = ref 0 in
      let dispatcher = ref None in
      let handler o =
        incr active;
        let cls = Obvent.cls o in
        Hashtbl.replace active_by_class cls
          (1 + Option.value ~default:0 (Hashtbl.find_opt active_by_class cls));
        (match policy with
        | Dispatch.Single -> if !active > 1 then violations := true
        | Dispatch.Multi n -> if !active > max 1 n then violations := true
        | Dispatch.Class_serial ->
            if Hashtbl.find active_by_class cls > 1 then violations := true);
        (* Completion bookkeeping must mirror the dispatcher's. *)
        Engine.schedule engine ~delay:100 (fun () ->
            decr active;
            Hashtbl.replace active_by_class cls
              (Hashtbl.find active_by_class cls - 1));
        ignore !dispatcher
      in
      let d = Dispatch.create engine ~service_time:100 policy handler in
      dispatcher := Some d;
      List.iter
        (fun k ->
          Dispatch.submit d (quote_of reg class_names.(k) ()))
        classes;
      Engine.run engine;
      (not !violations)
      && (Dispatch.stats d).Dispatch.executed = List.length classes
      && Dispatch.in_flight d = 0)

let test_engine_fuzz () =
  (* Failure-injection fuzz: a random schedule of publishes,
     (de)activations, crashes and recoveries, then whole-system
     invariants:
     - a handler only ever receives instances of its subscribed type;
     - every delivered obvent is a distinct clone;
     - domain delivery count = sum of per-subscription counts. *)
  List.iter
    (fun seed ->
      let reg, engine, net, domain, procs = setup ~n:6 ~seed ()
      in
      let rng = Tpbs_sim.Rng.create (seed * 13) in
      let classes = [| "StockQuote"; "SpotPrice"; "MarketPrice" |] in
      let params = [| "StockObvent"; "StockQuote"; "StockRequest"; "Obvent" |] in
      let violations = ref [] in
      let seen_uids = Hashtbl.create 256 in
      let subs = ref [] in
      (* A pool of subscriptions over random types on random nodes. *)
      for _ = 1 to 8 do
        let p = procs.(Tpbs_sim.Rng.int rng 6) in
        let param = Tpbs_sim.Rng.pick rng params in
        let s = ref None in
        let handler o =
          if not (Obvent.instance_of reg o param) then
            violations := Printf.sprintf "%s not <: %s" (Obvent.cls o) param :: !violations;
          if Hashtbl.mem seen_uids (Obvent.uid o) then
            violations := "shared clone" :: !violations;
          Hashtbl.add seen_uids (Obvent.uid o) ()
        in
        s := Some (Process.subscribe p ~param handler);
        subs := Option.get !s :: !subs
      done;
      (* Random schedule. *)
      for step = 0 to 120 do
        let at = step * 700 in
        match Tpbs_sim.Rng.int rng 10 with
        | 0 | 1 | 2 | 3 | 4 ->
            let p = procs.(Tpbs_sim.Rng.int rng 6) in
            let cls = Tpbs_sim.Rng.pick rng classes in
            Engine.schedule engine ~delay:at (fun () ->
                match Process.publish p (quote_of reg cls ()) with
                | () -> ()
                | exception Errors.Cannot_publish _ -> ())
        | 5 | 6 ->
            let s = List.nth !subs (Tpbs_sim.Rng.int rng (List.length !subs)) in
            Engine.schedule engine ~delay:at (fun () ->
                match Subscription.activate s with
                | () -> ()
                | exception Errors.Cannot_subscribe _ -> ())
        | 7 ->
            let s = List.nth !subs (Tpbs_sim.Rng.int rng (List.length !subs)) in
            Engine.schedule engine ~delay:at (fun () ->
                match Subscription.deactivate s with
                | () -> ()
                | exception Errors.Cannot_unsubscribe _ -> ())
        | 8 ->
            let node = Process.node procs.(Tpbs_sim.Rng.int rng 6) in
            Engine.schedule engine ~delay:at (fun () -> Net.crash net node)
        | _ ->
            let i = Tpbs_sim.Rng.int rng 6 in
            Engine.schedule engine ~delay:at (fun () ->
                Net.recover net (Process.node procs.(i));
                Process.resume procs.(i))
      done;
      Engine.run engine;
      (match !violations with
      | [] -> ()
      | v :: _ -> Alcotest.failf "seed %d: invariant violated: %s" seed v);
      let per_sub =
        List.fold_left (fun acc s -> acc + Subscription.delivered s) 0 !subs
      in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: delivery accounting" seed)
        (Domain.stats domain).Domain.deliveries per_sub)
    [ 101; 202; 303; 404 ]

let test_meta_channel () =
  (* §4.2: subscription requests are obvents on a reflexive channel. *)
  let _reg, engine, _net, domain, procs = setup () in
  Domain.enable_meta domain;
  let meta_log = ref [] in
  let watcher =
    Process.subscribe procs.(3) ~param:"MetaObvent" (fun o ->
        meta_log :=
          (Obvent.cls o, Obvent.get o "subscribedType") :: !meta_log)
  in
  Subscription.activate watcher;
  Engine.run engine;
  let s = Process.subscribe procs.(1) ~param:"StockQuote" (fun _ -> ()) in
  Subscription.activate s;
  Engine.run engine;
  Subscription.deactivate s;
  Engine.run engine;
  let observed = List.rev !meta_log in
  Alcotest.(check bool) "activation observed" true
    (List.mem ("SubscriptionActivated", Value.Str "StockQuote") observed);
  Alcotest.(check bool) "deactivation observed" true
    (List.mem ("SubscriptionDeactivated", Value.Str "StockQuote") observed);
  (* No meta traffic about the watcher's own (meta) subscription. *)
  Alcotest.(check bool) "reflexive tower is finite" true
    (not
       (List.exists
          (fun (_, t) -> t = Value.Str "MetaObvent")
          observed))

let test_meta_disabled_by_default () =
  let _reg, engine, _net, _domain, procs = setup () in
  let meta_count = ref 0 in
  let watcher =
    Process.subscribe procs.(2) ~param:"MetaObvent" (fun _ -> incr meta_count)
  in
  Subscription.activate watcher;
  let s = Process.subscribe procs.(1) ~param:"StockQuote" (fun _ -> ()) in
  Subscription.activate s;
  Engine.run engine;
  Alcotest.(check int) "silent when disabled" 0 !meta_count

let suite =
  ( "core",
    [ Alcotest.test_case "type routing: supertype sees subtypes (Fig. 1)"
        `Quick test_subscribe_supertype_receives_subtypes;
      Alcotest.test_case "content filtering" `Quick test_filtering;
      Alcotest.test_case "clone per subscriber (§2.1.2)" `Quick
        test_clone_per_subscriber;
      Alcotest.test_case "publisher is also a subscriber" `Quick
        test_publisher_also_subscribes;
      Alcotest.test_case "activation lifecycle (§3.4)" `Quick
        test_activation_lifecycle;
      Alcotest.test_case "subscription validation (LP1)" `Quick
        test_subscribe_validation;
      Alcotest.test_case "publish from crashed process" `Quick
        test_publish_from_crashed_raises;
      Alcotest.test_case "total-order channel" `Quick test_total_order_channel;
      Alcotest.test_case "causal channel" `Quick test_causal_channel;
      Alcotest.test_case "fifo channel" `Quick test_fifo_channel;
      Alcotest.test_case "certified: crash recovery + durable id" `Quick
        test_certified_crash_recovery;
      Alcotest.test_case "certified: replay subscription" `Quick
        test_replay_subscription;
      Alcotest.test_case "certified: replay respects filter" `Quick
        test_replay_respects_filter;
      Alcotest.test_case "certified: durable id type mismatch" `Quick
        test_durable_id_type_mismatch;
      Alcotest.test_case "priority overtaking" `Quick test_priority_overtaking;
      Alcotest.test_case "teardown during egress drain" `Quick
        test_teardown_during_egress_drain;
      Alcotest.test_case "timely: expiry in queue" `Quick
        test_timely_expiry_in_queue;
      Alcotest.test_case "timely: newest preferred" `Quick
        test_timely_newest_preferred;
      Alcotest.test_case "qos precedence: reliable beats timely" `Quick
        test_qos_precedence_in_engine;
      Alcotest.test_case "thread policies (§3.3.5)" `Quick test_thread_policies;
      Alcotest.test_case "ordered defaults" `Quick
        test_ordered_defaults_single_threaded;
      Alcotest.test_case "broker: remote filtering (§3.3.3)" `Quick
        test_broker_remote_filtering;
      Alcotest.test_case "broker: unsubscribe stops forwarding" `Quick
        test_broker_unsubscribe_stops_forwarding;
      Alcotest.test_case "broker: non-match drops with zero decodes" `Quick
        test_broker_drop_zero_decodes;
      Alcotest.test_case "cow delivery isolation under subscriber writes"
        `Quick test_delivery_cow_isolation;
      Alcotest.test_case "EagerClone opts out of cow views" `Quick
        test_eager_clone_opt_out;
      Alcotest.test_case "gossip channel" `Quick test_gossip_channel;
      Alcotest.test_case "RMI hand in hand (§5.4, Fig. 8)" `Quick
        test_rmi_proxies_adopted_and_pinned;
      Alcotest.test_case "latency accounting" `Quick test_latency_metric;
      Alcotest.test_case "certified + prioritary compose" `Quick
        test_certified_prioritary_combination;
      Alcotest.test_case "filter runtime error = no match" `Quick
        test_filter_runtime_error_is_no_match;
      Alcotest.test_case "closure exception = no match" `Quick
        test_closure_exception_is_no_match;
      Alcotest.test_case "delivered counter" `Quick
        test_subscription_delivered_counter;
      Alcotest.test_case "50 subscriptions, 50 clones" `Quick
        test_many_subscriptions_one_node;
      Alcotest.test_case "interleaved activation cycles (§3.4.2)" `Quick
        test_interleaved_activation_cycles;
      Alcotest.test_case "multiple filtering hosts" `Quick
        test_multiple_brokers;
      Alcotest.test_case "class-serial threading (§3.3.5 extension)" `Quick
        test_class_serial_threading;
      Alcotest.test_case "reflexive meta channel (§4.2)" `Quick
        test_meta_channel;
      Alcotest.test_case "meta channel off by default" `Quick
        test_meta_disabled_by_default;
      Alcotest.test_case "targeted dissemination (DACE routing)" `Quick
        test_targeted_dissemination;
      Alcotest.test_case "targeted: propagation window" `Quick
        test_targeted_interest_window;
      Alcotest.test_case "engine fuzz: random ops + crashes" `Quick
        test_engine_fuzz ]
    @ List.map QCheck_alcotest.to_alcotest [ prop_dispatch_invariants ] )
