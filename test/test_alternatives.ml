(* The design alternatives of §5: reflection-based untyped filters
   (§5.5.1), structural/tuple publishing (§5.5.2), and the fork-style
   subscription (§5.1). *)

open Helpers
module Engine = Tpbs_sim.Engine
module Net = Tpbs_sim.Net
module Reflect = Tpbs_obvent.Reflect
module Pubsub = Tpbs_core.Pubsub
module Fspec = Tpbs_core.Fspec
module Structural = Tpbs_core.Structural
module Fork = Tpbs_core.Fork
module Domain = Pubsub.Domain
module Process = Pubsub.Process
module Subscription = Pubsub.Subscription

let setup ?(n = 3) () =
  let reg = stock_registry () in
  (* An unrelated obvent class that also happens to have getPrice —
     the structural-equivalence scenario of §5.5.1. *)
  Registry.declare_class reg ~name:"AuctionBid" ~implements:[ "Obvent" ]
    ~attrs:[ "item", Vtype.Tstring; "price", Vtype.Tfloat ]
    ();
  let engine = Engine.create ~seed:42 () in
  let net = Net.create engine in
  let domain = Domain.create reg net in
  let procs = Array.init n (fun _ -> Process.create domain (Net.add_node net)) in
  reg, engine, domain, procs

(* --- reflection (§5.5.1) -------------------------------------------- *)

let test_reflect_introspection () =
  let reg, _, _, _ = setup () in
  let q = quote reg ~price:150. () in
  Alcotest.(check string) "getClass" "StockQuote" (Reflect.class_name q);
  Alcotest.(check bool) "has getPrice" true
    (Reflect.has_method reg q "getPrice" ());
  Alcotest.(check bool) "has getPrice : float" true
    (Reflect.has_method reg q "getPrice" ~ret:Vtype.Tfloat ());
  Alcotest.(check bool) "getPrice is not a string" false
    (Reflect.has_method reg q "getPrice" ~ret:Vtype.Tstring ());
  Alcotest.(check bool) "no getVolume" false
    (Reflect.has_method reg q "getVolume" ());
  Alcotest.(check (option value_testable)) "dynamic invoke"
    (Some (Value.Float 150.))
    (Reflect.invoke_opt reg q "getPrice");
  Alcotest.(check (option value_testable)) "dynamic invoke missing" None
    (Reflect.invoke_opt reg q "getVolume");
  Alcotest.(check int) "three getters visible" 3
    (List.length (Reflect.methods reg q));
  Alcotest.(check bool) "fields_of lists kinds" true
    (List.mem ("price", Value.Kfloat) (Reflect.fields_of q))

let test_reflect_untyped_filter_crosses_types () =
  (* Subscribe to Obvent with the paper's getPrice()==150 reflective
     filter: both StockQuote and the unrelated AuctionBid match. *)
  let reg, engine, _, procs = setup () in
  let got = ref [] in
  let filter =
    Fspec.closure
      (Reflect.structural_filter reg ~meth:"getPrice" (fun v ->
           Value.equal v (Value.Float 150.)))
  in
  let s =
    Process.subscribe procs.(1) ~param:"Obvent" ~filter (fun o ->
        got := Obvent.cls o :: !got)
  in
  Subscription.activate s;
  Process.publish procs.(0) (quote reg ~price:150. ());
  Process.publish procs.(0) (quote reg ~price:80. ());
  Process.publish procs.(0)
    (Obvent.make reg "AuctionBid"
       [ "item", Value.Str "painting"; "price", Value.Float 150. ]);
  Engine.run engine;
  Alcotest.(check (list string)) "both types captured structurally"
    [ "AuctionBid"; "StockQuote" ]
    (List.sort String.compare !got)

(* --- structural / tuple publishing (§5.5.2) --------------------------- *)

let test_structural_basic () =
  let _, engine, _, procs = setup () in
  let endpoints = Array.map Structural.attach procs in
  let got = ref [] in
  let _sub =
    Structural.subscribe endpoints.(1)
      [ Structural.Kind Value.Kstring; Structural.Kind Value.Kfloat;
        Structural.Any ]
      ~filter:(fun tuple ->
        match tuple with
        | [ _; Value.Float p; _ ] -> p < 100.
        | _ -> false)
      (fun tuple -> got := tuple :: !got)
  in
  Structural.publish endpoints.(0)
    [ Value.Str "Telco"; Value.Float 80.; Value.Int 10 ];
  Structural.publish endpoints.(0)
    [ Value.Str "Telco"; Value.Float 150.; Value.Int 10 ];
  (* Wrong arity: ignored. *)
  Structural.publish endpoints.(0) [ Value.Str "Telco" ];
  (* Wrong kind in second position: ignored. *)
  Structural.publish endpoints.(0)
    [ Value.Str "Telco"; Value.Str "cheap"; Value.Int 10 ];
  Engine.run engine;
  Alcotest.(check int) "exactly the cheap well-shaped tuple" 1
    (List.length !got)

let test_structural_exact_and_cancel () =
  let _, engine, _, procs = setup () in
  let endpoints = Array.map Structural.attach procs in
  let count = ref 0 in
  let sub =
    Structural.subscribe endpoints.(2)
      [ Structural.Exact (Value.Str "Telco"); Structural.Any ]
      (fun _ -> incr count)
  in
  Structural.publish endpoints.(0) [ Value.Str "Telco"; Value.Int 1 ];
  Structural.publish endpoints.(0) [ Value.Str "Acme"; Value.Int 2 ];
  Engine.run engine;
  Alcotest.(check int) "exact match only" 1 !count;
  Alcotest.(check int) "delivered counter" 1 (Structural.delivered sub);
  Structural.cancel endpoints.(2) sub;
  Structural.publish endpoints.(0) [ Value.Str "Telco"; Value.Int 3 ];
  Engine.run engine;
  Alcotest.(check int) "cancelled" 1 !count

let test_structural_copies_are_fresh () =
  (* Tuples are decoded per subscription: mutating-by-identity is
     impossible, mirroring obvent uniqueness. *)
  let _, engine, _, procs = setup () in
  let endpoints = Array.map Structural.attach procs in
  let seen = ref [] in
  let sub1 =
    Structural.subscribe endpoints.(1) [ Structural.Any ] (fun tu ->
        seen := ("a", tu) :: !seen)
  and sub2 =
    Structural.subscribe endpoints.(1) [ Structural.Any ] (fun tu ->
        seen := ("b", tu) :: !seen)
  in
  ignore sub1;
  ignore sub2;
  Structural.publish endpoints.(0) [ Value.obj "C" [ "x", Value.Int 1 ] ];
  Engine.run engine;
  match !seen with
  | [ (_, [ Value.Obj o1 ]); (_, [ Value.Obj o2 ]) ] ->
      Alcotest.(check bool) "physically distinct" true (not (o1 == o2))
  | _ -> Alcotest.fail "expected two single-object tuples"

(* --- listener/callback alternative (§5.2) ------------------------------ *)

let test_listener_registration () =
  let reg, engine, _, procs = setup () in
  let seen = ref [] in
  let n = { Tpbs_core.Listener.notify = (fun o -> seen := Obvent.cls o :: !seen) } in
  (* One notifiable registered for two related types: delivered once
     per registration (§5.2.2's question, answered). *)
  let r1 = Tpbs_core.Listener.register procs.(1) ~param:"StockQuote" n in
  let r2 = Tpbs_core.Listener.register procs.(1) ~param:"StockObvent" n in
  Process.publish procs.(0) (quote reg ());
  Engine.run engine;
  Alcotest.(check int) "once per registration" 2 (List.length !seen);
  Tpbs_core.Listener.unregister r1;
  Process.publish procs.(0) (quote reg ());
  Engine.run engine;
  Alcotest.(check int) "one registration left" 3 (List.length !seen);
  (match Tpbs_core.Listener.unregister r1 with
  | exception Tpbs_core.Errors.Cannot_unsubscribe _ -> ()
  | () -> Alcotest.fail "double unregister accepted");
  Tpbs_core.Listener.unregister r2

let test_listener_dispatch_by_class () =
  let reg, engine, _, procs = setup () in
  let quotes = ref 0 and bids = ref 0 and other = ref 0 in
  let n =
    Tpbs_core.Listener.dispatch_by_class
      [ "StockQuote", (fun _ -> incr quotes); "AuctionBid", (fun _ -> incr bids) ]
      ~default:(fun _ -> incr other)
  in
  let _r = Tpbs_core.Listener.register procs.(1) ~param:"Obvent" n in
  Process.publish procs.(0) (quote reg ());
  Process.publish procs.(0)
    (Obvent.make reg "AuctionBid"
       [ "item", Value.Str "vase"; "price", Value.Float 3. ]);
  Process.publish procs.(0)
    (Obvent.make reg "SpotPrice"
       [ "company", Value.Str "T"; "price", Value.Float 1.;
         "amount", Value.Int 1 ]);
  Engine.run engine;
  Alcotest.(check (list int)) "hand-written dispatch routed" [ 1; 1; 1 ]
    [ !quotes; !bids; !other ]

(* --- fork-style subscription (§5.1) ------------------------------------ *)

let test_fork_continue_and_cancel () =
  let reg, engine, _, procs = setup () in
  let got = ref 0 in
  (* Take exactly two quotes, then cancel from inside — no handle ever
     escapes. *)
  Fork.subscribe procs.(1) ~param:"StockQuote" (fun _ ->
      incr got;
      if !got >= 2 then Fork.Cancel else Fork.Continue);
  for _ = 1 to 5 do
    Process.publish procs.(0) (quote reg ())
  done;
  Engine.run engine;
  Alcotest.(check int) "cancelled after the second event" 2 !got

let test_fork_with_filter () =
  let reg, engine, _, procs = setup () in
  let got = ref 0 in
  Fork.subscribe procs.(1) ~param:"StockQuote"
    ~filter:(Fspec.of_source ~param:"q" "q.getPrice() < 100")
    (fun _ ->
      incr got;
      Fork.Continue);
  Process.publish procs.(0) (quote reg ~price:80. ());
  Process.publish procs.(0) (quote reg ~price:200. ());
  Engine.run engine;
  Alcotest.(check int) "filter applies" 1 !got

let prop_structural_matches_reference =
  (* Structural.matches against a straightforward reference. *)
  let gen_value =
    QCheck.Gen.(
      oneof
        [ map (fun i -> Value.Int i) (int_range 0 5);
          map (fun f -> Value.Float f) (float_bound_exclusive 5.);
          map (fun s -> Value.Str s) (oneofl [ "a"; "b" ]) ])
  in
  let gen_pattern =
    QCheck.Gen.(
      oneof
        [ return Structural.Any;
          map (fun v -> Structural.Exact v) gen_value;
          map (fun v -> Structural.Kind (Value.kind v)) gen_value ])
  in
  QCheck.Test.make ~name:"structural pattern matching reference" ~count:300
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_range 0 4) gen_pattern)
           (list_size (int_range 0 4) gen_value)))
    (fun (patterns, tuple) ->
      let reference =
        List.length patterns = List.length tuple
        && List.for_all2
             (fun p v ->
               match p with
               | Structural.Any -> true
               | Structural.Kind k -> Value.kind v = k
               | Structural.Exact e -> Value.equal e v)
             patterns tuple
      in
      Structural.matches patterns tuple = reference)

let suite =
  ( "alternatives",
    [ Alcotest.test_case "reflect: introspection (§5.5.1)" `Quick
        test_reflect_introspection;
      Alcotest.test_case "reflect: untyped filter crosses types" `Quick
        test_reflect_untyped_filter_crosses_types;
      Alcotest.test_case "structural: kinds + client filter (§5.5.2)" `Quick
        test_structural_basic;
      Alcotest.test_case "structural: exact patterns + cancel" `Quick
        test_structural_exact_and_cancel;
      Alcotest.test_case "structural: fresh copies per subscription" `Quick
        test_structural_copies_are_fresh;
      Alcotest.test_case "listener: registrations (§5.2)" `Quick
        test_listener_registration;
      Alcotest.test_case "listener: dispatch by class (§5.2.2)" `Quick
        test_listener_dispatch_by_class;
      Alcotest.test_case "fork: cancel from inside (§5.1)" `Quick
        test_fork_continue_and_cancel;
      Alcotest.test_case "fork: with filter" `Quick test_fork_with_filter ]
    @ List.map QCheck_alcotest.to_alcotest [ prop_structural_matches_reference ]
  )
