module Value = Tpbs_serial.Value
module Topics = Tpbs_baselines.Topics
module Contentps = Tpbs_baselines.Contentps
module Tuplespace = Tpbs_baselines.Tuplespace

(* --- topics ----------------------------------------------------------- *)

let test_topics_exact_and_hierarchy () =
  let t = Topics.create () in
  Topics.subscribe t ~topic:"stocks" 1;
  Topics.subscribe t ~topic:"stocks/telco" 2;
  Topics.subscribe t ~topic:"news" 3;
  Alcotest.(check (list int)) "publish to subtopic reaches ancestor" [ 1; 2 ]
    (Topics.publish t ~topic:"stocks/telco");
  Alcotest.(check (list int)) "publish to parent misses child" [ 1 ]
    (Topics.publish t ~topic:"stocks");
  Alcotest.(check (list int)) "deeper descendant" [ 1; 2 ]
    (Topics.publish t ~topic:"stocks/telco/mobiles");
  Alcotest.(check (list int)) "unrelated" [ 3 ] (Topics.publish t ~topic:"news")

let test_topics_wildcard () =
  let t = Topics.create () in
  Topics.subscribe t ~topic:"stocks/*" 1;
  Alcotest.(check (list int)) "one level below matches" [ 1 ]
    (Topics.publish t ~topic:"stocks/telco");
  Alcotest.(check (list int)) "two levels below misses" []
    (Topics.publish t ~topic:"stocks/telco/mobiles");
  Alcotest.(check (list int)) "the node itself misses" []
    (Topics.publish t ~topic:"stocks")

let test_topics_unsubscribe () =
  let t = Topics.create () in
  Topics.subscribe t ~topic:"a/b" 1;
  Topics.subscribe t ~topic:"a/b" 2;
  Topics.unsubscribe t ~topic:"a/b" 1;
  Alcotest.(check (list int)) "only remaining" [ 2 ]
    (Topics.publish t ~topic:"a/b");
  Alcotest.(check int) "subscriber count" 1 (Topics.subscriber_count t);
  Topics.unsubscribe t ~topic:"never/there" 9 (* no-op *)

(* --- content-based ------------------------------------------------------ *)

let quote_event company price amount : Contentps.event =
  [ "company", Value.Str company; "price", Value.Float price;
    "amount", Value.Int amount ]

let test_content_matching () =
  let t = Contentps.create () in
  Contentps.subscribe t 1
    [ { attr = "price"; op = Contentps.Lt; const = Value.Float 100. } ];
  Contentps.subscribe t 2
    [ { attr = "company"; op = Contentps.Prefix; const = Value.Str "Telco" };
      { attr = "price"; op = Contentps.Lt; const = Value.Float 100. } ];
  Contentps.subscribe t 3
    [ { attr = "company"; op = Contentps.Contains; const = Value.Str "Acme" } ];
  Alcotest.(check (list int)) "cheap telco matches 1 and 2" [ 1; 2 ]
    (Contentps.matches t (quote_event "Telco Mobiles" 80. 10));
  Alcotest.(check (list int)) "expensive telco matches none of the cheap" []
    (Contentps.matches t (quote_event "Telco Mobiles" 150. 10));
  Alcotest.(check (list int)) "acme" [ 1; 3 ]
    (Contentps.matches t (quote_event "Acme Corp" 10. 1))

let test_content_missing_attribute_is_false () =
  let t = Contentps.create () in
  Contentps.subscribe t 1
    [ { attr = "volume"; op = Contentps.Gt; const = Value.Int 0 } ];
  Alcotest.(check (list int)) "missing attr no match" []
    (Contentps.matches t (quote_event "X" 1. 1))

let test_content_empty_conjunction_matches_all () =
  let t = Contentps.create () in
  Contentps.subscribe t 7 [];
  Alcotest.(check (list int)) "empty matches" [ 7 ]
    (Contentps.matches t (quote_event "X" 1. 1))

let test_content_unsubscribe_and_numeric_promotion () =
  let t = Contentps.create () in
  Contentps.subscribe t 1
    [ { attr = "price"; op = Contentps.Eq; const = Value.Int 80 } ];
  Alcotest.(check (list int)) "int constant matches float attr" [ 1 ]
    (Contentps.matches t (quote_event "X" 80. 1));
  Contentps.unsubscribe t 1;
  Alcotest.(check (list int)) "gone" []
    (Contentps.matches t (quote_event "X" 80. 1))

let prop_content_index_agrees_with_naive =
  let gen =
    QCheck.Gen.(
      pair
        (list_size (int_range 0 10)
           (map3
              (fun attr opn k ->
                let op =
                  match opn mod 6 with
                  | 0 -> Contentps.Eq | 1 -> Contentps.Ne | 2 -> Contentps.Lt
                  | 3 -> Contentps.Le | 4 -> Contentps.Gt | _ -> Contentps.Ge
                in
                [ { Contentps.attr; op; const = Value.Int k } ])
              (oneofl [ "a"; "b"; "c" ])
              small_nat (int_range 0 20)))
        (list_size (int_range 0 3)
           (pair (oneofl [ "a"; "b"; "c"; "d" ]) (int_range 0 20))))
  in
  QCheck.Test.make ~name:"content index agrees with naive evaluation"
    ~count:300 (QCheck.make gen)
    (fun (subs, ev) ->
      let event = List.map (fun (a, k) -> a, Value.Int k) ev in
      (* Deduplicate event attributes (assoc semantics). *)
      let event =
        List.fold_left
          (fun acc (a, v) -> if List.mem_assoc a acc then acc else (a, v) :: acc)
          [] event
      in
      let t = Contentps.create () in
      List.iteri (fun i cs -> Contentps.subscribe t i cs) subs;
      let expected =
        List.mapi (fun i cs -> i, Contentps.matches_naive cs event) subs
        |> List.filter snd |> List.map fst
      in
      Contentps.matches t event = expected)

(* --- tuple space ---------------------------------------------------------- *)

let stock_tuple company price amount : Tuplespace.tuple =
  [ Value.Str company; Value.Float price; Value.Int amount ]

let test_tuplespace_out_read_take () =
  let ts = Tuplespace.create () in
  Tuplespace.out ts (stock_tuple "Telco" 80. 10);
  Tuplespace.out ts (stock_tuple "Acme" 50. 5);
  let template =
    [ Tuplespace.Exact (Value.Str "Telco"); Tuplespace.Formal Value.Kfloat;
      Tuplespace.Wildcard ]
  in
  (match Tuplespace.try_read ts template with
  | Some [ Value.Str "Telco"; _; _ ] -> ()
  | _ -> Alcotest.fail "read failed");
  Alcotest.(check int) "read leaves tuple" 2 (Tuplespace.size ts);
  (match Tuplespace.try_take ts template with
  | Some _ -> ()
  | None -> Alcotest.fail "take failed");
  Alcotest.(check int) "take removes tuple" 1 (Tuplespace.size ts);
  Alcotest.(check bool) "no more telco" true
    (Tuplespace.try_read ts template = None)

let test_tuplespace_formal_types () =
  let ts = Tuplespace.create () in
  Tuplespace.out ts [ Value.Int 1; Value.Str "x" ];
  Alcotest.(check bool) "kind mismatch" true
    (Tuplespace.try_read ts [ Tuplespace.Formal Value.Kfloat; Tuplespace.Wildcard ]
    = None);
  Alcotest.(check bool) "arity mismatch" true
    (Tuplespace.try_read ts [ Tuplespace.Wildcard ] = None)

let test_tuplespace_blocking () =
  let ts = Tuplespace.create () in
  let got = ref [] in
  let template = [ Tuplespace.Formal Value.Kint ] in
  Tuplespace.take ts template ~k:(fun tu -> got := ("a", tu) :: !got);
  Tuplespace.take ts template ~k:(fun tu -> got := ("b", tu) :: !got);
  Alcotest.(check int) "two blocked" 2 (Tuplespace.pending ts);
  Tuplespace.out ts [ Value.Int 1 ];
  (* First blocked take wins; the second stays blocked. *)
  Alcotest.(check (list (pair string (list Helpers.value_testable))))
    "first take served" [ "a", [ Value.Int 1 ] ] (List.rev !got);
  Alcotest.(check int) "space empty (consumed)" 0 (Tuplespace.size ts);
  Tuplespace.out ts [ Value.Int 2 ];
  Alcotest.(check int) "second served" 2 (List.length !got);
  Alcotest.(check int) "no more pending" 0 (Tuplespace.pending ts)

let test_tuplespace_read_does_not_consume () =
  let ts = Tuplespace.create () in
  let reads = ref 0 in
  Tuplespace.read ts [ Tuplespace.Wildcard ] ~k:(fun _ -> incr reads);
  Tuplespace.read ts [ Tuplespace.Wildcard ] ~k:(fun _ -> incr reads);
  Tuplespace.out ts [ Value.Int 9 ];
  Alcotest.(check int) "both reads served" 2 !reads;
  Alcotest.(check int) "tuple stays" 1 (Tuplespace.size ts)

let test_tuplespace_notify () =
  let ts = Tuplespace.create () in
  let seen = ref 0 in
  Tuplespace.out ts [ Value.Int 0 ];
  let id = Tuplespace.notify ts [ Tuplespace.Formal Value.Kint ] (fun _ -> incr seen) in
  Alcotest.(check int) "pre-existing tuples invisible" 0 !seen;
  Tuplespace.out ts [ Value.Int 1 ];
  Tuplespace.out ts [ Value.Str "no" ];
  Tuplespace.out ts [ Value.Int 2 ];
  Alcotest.(check int) "two notifications" 2 !seen;
  Tuplespace.cancel_notify ts id;
  Tuplespace.out ts [ Value.Int 3 ];
  Alcotest.(check int) "cancelled" 2 !seen

(* Reference topic matcher: explicit semantics to check the trie
   against. *)
let reference_topic_match ~pattern ~topic =
  let segs = Topics.parse topic in
  let psegs = Topics.parse pattern in
  match List.rev psegs with
  | "*" :: rev_prefix ->
      let prefix = List.rev rev_prefix in
      List.length segs = List.length prefix + 1
      && List.for_all2 ( = ) prefix
           (List.filteri (fun i _ -> i < List.length prefix) segs)
  | _ ->
      let rec is_prefix a b =
        match a, b with
        | [], _ -> true
        | x :: xs, y :: ys -> x = y && is_prefix xs ys
        | _, [] -> false
      in
      is_prefix psegs segs

let prop_topics_match_reference =
  let seg = QCheck.Gen.oneofl [ "a"; "b"; "c" ] in
  let gen_topic = QCheck.Gen.(map (String.concat "/") (list_size (int_range 1 4) seg)) in
  let gen_pattern =
    QCheck.Gen.(
      map2
        (fun t wild -> if wild then t ^ "/*" else t)
        gen_topic bool)
  in
  QCheck.Test.make ~name:"topic trie agrees with reference semantics"
    ~count:400
    (QCheck.make QCheck.Gen.(pair gen_pattern gen_topic))
    (fun (pattern, topic) ->
      let t = Topics.create () in
      Topics.subscribe t ~topic:pattern 0;
      let via_trie = Topics.publish t ~topic <> [] in
      via_trie = reference_topic_match ~pattern ~topic)

let suite =
  ( "baselines",
    [ Alcotest.test_case "topics: hierarchy containment" `Quick
        test_topics_exact_and_hierarchy;
      Alcotest.test_case "topics: one-level wildcard" `Quick
        test_topics_wildcard;
      Alcotest.test_case "topics: unsubscribe" `Quick test_topics_unsubscribe;
      Alcotest.test_case "content: matching" `Quick test_content_matching;
      Alcotest.test_case "content: missing attribute" `Quick
        test_content_missing_attribute_is_false;
      Alcotest.test_case "content: empty conjunction" `Quick
        test_content_empty_conjunction_matches_all;
      Alcotest.test_case "content: unsubscribe + promotion" `Quick
        test_content_unsubscribe_and_numeric_promotion;
      Alcotest.test_case "tuplespace: out/read/take" `Quick
        test_tuplespace_out_read_take;
      Alcotest.test_case "tuplespace: typed formals" `Quick
        test_tuplespace_formal_types;
      Alcotest.test_case "tuplespace: blocking take" `Quick
        test_tuplespace_blocking;
      Alcotest.test_case "tuplespace: blocking read" `Quick
        test_tuplespace_read_does_not_consume;
      Alcotest.test_case "tuplespace: notify" `Quick test_tuplespace_notify ]
    @ List.map QCheck_alcotest.to_alcotest
        [ prop_content_index_agrees_with_naive; prop_topics_match_reference ] )
