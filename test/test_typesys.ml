open Helpers
module Qos = Tpbs_types.Qos

let check_raises_type_error name f =
  match f () with
  | _ -> Alcotest.fail (name ^ ": expected Type_error")
  | exception Registry.Type_error _ -> ()

let test_builtin_lattice () =
  let reg = Registry.create () in
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool) (a ^ " <: " ^ b) true (Registry.subtype reg a b))
    [ "Obvent", "Obvent"; "Reliable", "Obvent"; "Certified", "Reliable";
      "Certified", "Obvent"; "TotalOrder", "Reliable"; "FIFOOrder", "Reliable";
      "CausalOrder", "FIFOOrder"; "CausalOrder", "Obvent"; "Timely", "Obvent";
      "Prioritary", "Obvent" ];
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool) (a ^ " not <: " ^ b) false (Registry.subtype reg a b))
    [ "Obvent", "Reliable"; "TotalOrder", "FIFOOrder"; "Timely", "Reliable";
      "Reliable", "Certified" ]

let test_stock_hierarchy () =
  let reg = stock_registry () in
  Alcotest.(check bool) "SpotPrice <: StockObvent" true
    (Registry.subtype reg "SpotPrice" "StockObvent");
  Alcotest.(check bool) "SpotPrice <: Obvent" true
    (Registry.subtype reg "SpotPrice" "Obvent");
  Alcotest.(check bool) "StockQuote not <: StockRequest" false
    (Registry.subtype reg "StockQuote" "StockRequest");
  let subs = Registry.subtypes reg "StockObvent" in
  List.iter
    (fun t ->
      Alcotest.(check bool) (t ^ " among subtypes") true (List.mem t subs))
    [ "StockObvent"; "StockQuote"; "StockRequest"; "SpotPrice"; "MarketPrice" ];
  Alcotest.(check int) "exactly five subtypes" 5 (List.length subs)

let test_inherited_attributes_and_getters () =
  let reg = stock_registry () in
  let attrs = Registry.attrs_of reg "SpotPrice" in
  Alcotest.(check int) "inherits three attributes" 3 (List.length attrs);
  Alcotest.(check bool) "getPrice visible" true
    (Registry.method_ret reg "SpotPrice" "getPrice" = Some Vtype.Tfloat);
  Alcotest.(check bool) "getCompany returns string" true
    (Registry.method_ret reg "StockQuote" "getCompany" = Some Vtype.Tstring);
  Alcotest.(check bool) "no such method" true
    (Registry.method_ret reg "StockQuote" "getFoo" = None)

let test_interface_methods_visible () =
  let reg = Registry.create () in
  Registry.declare_class reg ~name:"Alarm" ~implements:[ "Prioritary" ]
    ~attrs:[ "priority", Vtype.Tint; "source", Vtype.Tstring ]
    ();
  Alcotest.(check bool) "getPriority on Alarm" true
    (Registry.method_ret reg "Alarm" "getPriority" = Some Vtype.Tint);
  Alcotest.(check bool) "getPriority on Prioritary itself" true
    (Registry.method_ret reg "Prioritary" "getPriority" = Some Vtype.Tint)

let test_unimplemented_interface_method_rejected () =
  let reg = Registry.create () in
  check_raises_type_error "missing getPriority" (fun () ->
      Registry.declare_class reg ~name:"BadAlarm" ~implements:[ "Prioritary" ]
        ~attrs:[ "source", Vtype.Tstring ]
        ())

let test_wrong_getter_type_rejected () =
  let reg = Registry.create () in
  check_raises_type_error "getPriority : string" (fun () ->
      Registry.declare_class reg ~name:"BadAlarm" ~implements:[ "Prioritary" ]
        ~attrs:[ "priority", Vtype.Tstring ]
        ())

let test_duplicate_rejected () =
  let reg = stock_registry () in
  check_raises_type_error "duplicate class" (fun () ->
      Registry.declare_class reg ~name:"StockQuote" ());
  check_raises_type_error "duplicate interface" (fun () ->
      Registry.declare_interface reg ~name:"Obvent" ())

let test_unknown_super_rejected () =
  let reg = Registry.create () in
  check_raises_type_error "unknown superclass" (fun () ->
      Registry.declare_class reg ~name:"X" ~extends:"Nope" ());
  check_raises_type_error "unknown interface" (fun () ->
      Registry.declare_class reg ~name:"X" ~implements:[ "Nope" ] ());
  check_raises_type_error "interface extending class" (fun () ->
      Registry.declare_class reg ~name:"C" ();
      Registry.declare_interface reg ~name:"I" ~extends:[ "C" ] ())

let test_extends_interface_rejected () =
  let reg = Registry.create () in
  check_raises_type_error "class extends interface" (fun () ->
      Registry.declare_class reg ~name:"X" ~extends:"Obvent" ())

let test_attr_shadowing_rejected () =
  let reg = stock_registry () in
  check_raises_type_error "shadow price with different type" (fun () ->
      Registry.declare_class reg ~name:"WeirdQuote" ~extends:"StockQuote"
        ~attrs:[ "price", Vtype.Tstring ]
        ())

let test_method_conflict_rejected () =
  let reg = Registry.create () in
  Registry.declare_interface reg ~name:"A" ~extends:[ "Obvent" ]
    ~methods:[ "getX", Vtype.Tint ]
    ();
  Registry.declare_interface reg ~name:"B" ~extends:[ "Obvent" ]
    ~methods:[ "getX", Vtype.Tstring ]
    ();
  check_raises_type_error "diamond with conflicting getX" (fun () ->
      Registry.declare_interface reg ~name:"AB" ~extends:[ "A"; "B" ] ())

let test_multiple_subtyping_diamond () =
  let reg = Registry.create () in
  (* Certified + TotalOrder: the paper's example of composing QoS. *)
  Registry.declare_interface reg ~name:"CertifiedTotal"
    ~extends:[ "Certified"; "TotalOrder" ]
    ();
  Alcotest.(check bool) "CT <: Certified" true
    (Registry.subtype reg "CertifiedTotal" "Certified");
  Alcotest.(check bool) "CT <: TotalOrder" true
    (Registry.subtype reg "CertifiedTotal" "TotalOrder");
  Alcotest.(check bool) "CT <: Reliable once-removed" true
    (Registry.subtype reg "CertifiedTotal" "Reliable")

let test_obvent_classes () =
  let reg = stock_registry () in
  Registry.declare_class reg ~name:"NotAnObvent" ~attrs:[ "x", Vtype.Tint ] ();
  let classes = Registry.obvent_classes reg in
  Alcotest.(check bool) "StockQuote is an obvent class" true
    (List.mem "StockQuote" classes);
  Alcotest.(check bool) "NotAnObvent excluded" false
    (List.mem "NotAnObvent" classes);
  Alcotest.(check bool) "interfaces excluded" false (List.mem "Obvent" classes)

let test_conforms () =
  let reg = stock_registry () in
  let good =
    Value.obj "StockQuote"
      [ "company", Value.Str "Telco"; "price", Value.Float 80.;
        "amount", Value.Int 10 ]
  in
  Alcotest.(check bool) "conforms to own class" true
    (Registry.conforms reg good "StockQuote");
  Alcotest.(check bool) "conforms to supertype" true
    (Registry.conforms reg good "StockObvent");
  Alcotest.(check bool) "conforms to Obvent" true
    (Registry.conforms reg good "Obvent");
  Alcotest.(check bool) "not a StockRequest" false
    (Registry.conforms reg good "StockRequest");
  let missing = Value.obj "StockQuote" [ "company", Value.Str "T" ] in
  Alcotest.(check bool) "missing attrs rejected" false
    (Registry.conforms reg missing "StockQuote");
  let bad_type =
    Value.obj "StockQuote"
      [ "company", Value.Int 3; "price", Value.Float 1.; "amount", Value.Int 1 ]
  in
  Alcotest.(check bool) "mistyped attr rejected" false
    (Registry.conforms reg bad_type "StockQuote");
  Alcotest.(check bool) "null conforms" true
    (Registry.conforms reg Value.Null "StockQuote")

(* --- QoS profiles (Fig. 3/4) --------------------------------------- *)

let profile reg name = fst (Qos.of_type reg name)
let conflicts reg name = snd (Qos.of_type reg name)

let test_qos_defaults () =
  let reg = stock_registry () in
  Alcotest.(check bool) "plain obvent is unreliable" true
    (Qos.equal (profile reg "StockQuote") Qos.unreliable)

let test_qos_markers () =
  let reg = Registry.create () in
  Registry.declare_interface reg ~name:"RObv" ~extends:[ "Reliable" ] ();
  Registry.declare_interface reg ~name:"CObv" ~extends:[ "Certified" ] ();
  Registry.declare_interface reg ~name:"TObv" ~extends:[ "TotalOrder" ] ();
  Registry.declare_interface reg ~name:"KObv" ~extends:[ "CausalOrder" ] ();
  let p = profile reg "RObv" in
  Alcotest.(check bool) "reliable" true p.Qos.reliable;
  Alcotest.(check bool) "not certified" false p.Qos.certified;
  let p = profile reg "CObv" in
  Alcotest.(check bool) "certified implies reliable" true
    (p.Qos.certified && p.Qos.reliable);
  let p = profile reg "TObv" in
  Alcotest.(check bool) "total order" true (p.Qos.order = Qos.Total);
  Alcotest.(check bool) "order implies reliable" true p.Qos.reliable;
  let p = profile reg "KObv" in
  Alcotest.(check bool) "causal order" true (p.Qos.order = Qos.Causal)

let test_qos_causal_total_combination () =
  let reg = Registry.create () in
  Registry.declare_interface reg ~name:"CT"
    ~extends:[ "CausalOrder"; "TotalOrder" ]
    ();
  Alcotest.(check bool) "causal+total" true
    ((profile reg "CT").Qos.order = Qos.Causal_total)

let test_qos_precedence_reliable_beats_timely () =
  let reg = Registry.create () in
  Registry.declare_interface reg ~name:"RT" ~extends:[ "Reliable"; "Timely" ] ();
  let p = profile reg "RT" in
  Alcotest.(check bool) "timely dropped" false p.Qos.timely;
  Alcotest.(check bool) "conflict reported" true
    (List.mem Qos.Timely_dropped (conflicts reg "RT"))

let test_qos_precedence_order_beats_priority () =
  let reg = Registry.create () in
  Registry.declare_interface reg ~name:"FP"
    ~extends:[ "FIFOOrder"; "Prioritary" ]
    ();
  let p = profile reg "FP" in
  Alcotest.(check bool) "priority dropped" false p.Qos.prioritary;
  Alcotest.(check bool) "conflict reported" true
    (List.mem Qos.Priority_dropped (conflicts reg "FP"))

let test_qos_compatible_combination_kept () =
  let reg = Registry.create () in
  (* Certified + Prioritary: no order, so priority survives. *)
  Registry.declare_interface reg ~name:"CP"
    ~extends:[ "Certified"; "Prioritary" ]
    ();
  let p = profile reg "CP" in
  Alcotest.(check bool) "priority kept" true p.Qos.prioritary;
  Alcotest.(check bool) "certified kept" true p.Qos.certified;
  Alcotest.(check (list (Alcotest.of_pp Fmt.nop))) "no conflicts" []
    (conflicts reg "CP")

let test_qos_unreliable_timely_kept () =
  let reg = Registry.create () in
  Registry.declare_interface reg ~name:"JustTimely" ~extends:[ "Timely" ] ();
  let p = profile reg "JustTimely" in
  Alcotest.(check bool) "timely kept" true p.Qos.timely;
  Alcotest.(check bool) "unreliable" false p.Qos.reliable

(* Random hierarchy generator: builds a registry with [n] interfaces
   and [n] classes, each extending earlier ones, and returns the
   registry plus names — declaration order guarantees acyclicity. *)
let random_hierarchy rng_seed n =
  let rng = Tpbs_sim.Rng.create rng_seed in
  let reg = Registry.create () in
  let interfaces = ref [ "Obvent" ] in
  for i = 0 to n - 1 do
    let name = Printf.sprintf "I%d" i in
    let pool = Array.of_list !interfaces in
    let k = 1 + Tpbs_sim.Rng.int rng 2 in
    let extends =
      List.sort_uniq String.compare
        (List.init k (fun _ -> Tpbs_sim.Rng.pick rng pool))
    in
    Registry.declare_interface reg ~name ~extends ();
    interfaces := name :: !interfaces
  done;
  let classes = ref [] in
  for i = 0 to n - 1 do
    let name = Printf.sprintf "C%d" i in
    let extends =
      match !classes with
      | [] -> None
      | cs ->
          if Tpbs_sim.Rng.bool rng 0.6 then
            Some (Tpbs_sim.Rng.pick rng (Array.of_list cs))
          else None
    in
    let implements =
      [ Tpbs_sim.Rng.pick rng (Array.of_list !interfaces) ]
    in
    Registry.declare_class reg ~name ?extends ~implements
      ~attrs:[ Printf.sprintf "a%d" i, Vtype.Tint ]
      ();
    classes := name :: !classes
  done;
  reg, !interfaces @ !classes

let prop_random_hierarchy_laws =
  QCheck.Test.make ~name:"random hierarchies: subtype laws + attrs monotone"
    ~count:40
    QCheck.(pair (int_range 0 1000) (int_range 2 12))
    (fun (seed, n) ->
      let reg, names = random_hierarchy seed n in
      let arr = Array.of_list names in
      let rng = Tpbs_sim.Rng.create (seed + 1) in
      let ok = ref true in
      for _ = 1 to 50 do
        let a = Tpbs_sim.Rng.pick rng arr
        and b = Tpbs_sim.Rng.pick rng arr
        and c = Tpbs_sim.Rng.pick rng arr in
        (* reflexivity *)
        if not (Registry.subtype reg a a) then ok := false;
        (* transitivity *)
        if
          Registry.subtype reg a b && Registry.subtype reg b c
          && not (Registry.subtype reg a c)
        then ok := false;
        (* subtypes/supertypes are converses *)
        if Registry.subtype reg a b && not (List.mem a (Registry.subtypes reg b))
        then ok := false;
        (* a class has at least as many attrs as its superclass *)
        if
          Registry.is_class reg a && Registry.is_class reg b
          && Registry.subtype reg a b
          && List.length (Registry.attrs_of reg a)
             < List.length (Registry.attrs_of reg b)
        then ok := false
      done;
      !ok)

let prop_qos_resolution_invariants =
  QCheck.Test.make ~name:"qos profiles are always contradiction-free"
    ~count:40
    QCheck.(int_range 0 1000)
    (fun seed ->
      let reg, names = random_hierarchy seed 8 in
      List.for_all
        (fun name ->
          if Registry.is_obvent_type reg name then begin
            let p, _ = Qos.of_type reg name in
            (* Fig. 4 invariants after resolution. *)
            (not (p.Qos.timely && p.Qos.reliable))
            && (not (p.Qos.prioritary && p.Qos.order <> Qos.No_order))
            && ((not p.Qos.certified) || p.Qos.reliable)
            && ((not (Qos.order_requires_reliability p.Qos.order))
               || p.Qos.reliable)
          end
          else true)
        names)

let prop_subtype_reflexive_transitive =
  QCheck.Test.make ~name:"subtype reflexive and transitive on stock lattice"
    ~count:100
    QCheck.(
      triple
        (oneofl [ "StockObvent"; "StockQuote"; "SpotPrice"; "MarketPrice";
                  "StockRequest"; "Obvent"; "Reliable" ])
        (oneofl [ "StockObvent"; "StockQuote"; "SpotPrice"; "MarketPrice";
                  "StockRequest"; "Obvent"; "Reliable" ])
        (oneofl [ "StockObvent"; "StockQuote"; "SpotPrice"; "MarketPrice";
                  "StockRequest"; "Obvent"; "Reliable" ]))
    (fun (a, b, c) ->
      let reg = stock_registry () in
      Registry.subtype reg a a
      && ((not (Registry.subtype reg a b && Registry.subtype reg b c))
         || Registry.subtype reg a c))

let suite =
  ( "typesys",
    [ Alcotest.test_case "builtin lattice" `Quick test_builtin_lattice;
      Alcotest.test_case "stock hierarchy" `Quick test_stock_hierarchy;
      Alcotest.test_case "inherited attributes/getters" `Quick
        test_inherited_attributes_and_getters;
      Alcotest.test_case "interface methods visible" `Quick
        test_interface_methods_visible;
      Alcotest.test_case "unimplemented interface method rejected" `Quick
        test_unimplemented_interface_method_rejected;
      Alcotest.test_case "wrong getter type rejected" `Quick
        test_wrong_getter_type_rejected;
      Alcotest.test_case "duplicates rejected" `Quick test_duplicate_rejected;
      Alcotest.test_case "unknown supertypes rejected" `Quick
        test_unknown_super_rejected;
      Alcotest.test_case "class extending interface rejected" `Quick
        test_extends_interface_rejected;
      Alcotest.test_case "attribute shadowing rejected" `Quick
        test_attr_shadowing_rejected;
      Alcotest.test_case "method conflicts rejected" `Quick
        test_method_conflict_rejected;
      Alcotest.test_case "multiple subtyping diamond" `Quick
        test_multiple_subtyping_diamond;
      Alcotest.test_case "obvent classes enumeration" `Quick
        test_obvent_classes;
      Alcotest.test_case "runtime conformance" `Quick test_conforms;
      Alcotest.test_case "qos: default unreliable" `Quick test_qos_defaults;
      Alcotest.test_case "qos: markers" `Quick test_qos_markers;
      Alcotest.test_case "qos: causal+total" `Quick
        test_qos_causal_total_combination;
      Alcotest.test_case "qos: reliable beats timely" `Quick
        test_qos_precedence_reliable_beats_timely;
      Alcotest.test_case "qos: order beats priority" `Quick
        test_qos_precedence_order_beats_priority;
      Alcotest.test_case "qos: compatible combination kept" `Quick
        test_qos_compatible_combination_kept;
      Alcotest.test_case "qos: unreliable timely kept" `Quick
        test_qos_unreliable_timely_kept ]
    @ List.map QCheck_alcotest.to_alcotest
        [ prop_subtype_reflexive_transitive; prop_random_hierarchy_laws;
          prop_qos_resolution_invariants ]
  )
