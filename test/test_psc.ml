module Pparser = Tpbs_psc.Pparser
module Ast = Tpbs_psc.Ast
module Compile = Tpbs_psc.Compile
module Interp = Tpbs_psc.Interp
module Registry = Tpbs_types.Registry
module Rfilter = Tpbs_filter.Rfilter

(* The paper's stock example, §2.3.3 / Fig. 2, as a Java_ps program. *)
let stock_program =
  {|
interface StockObvent extends Obvent {
  String getCompany();
  double getPrice();
  int getAmount();
}

class StockObventImpl implements StockObvent {
  String company;
  double price;
  int amount;
}

class StockQuote extends StockObventImpl {}

process market {
  publish new StockQuote("Telco Mobiles", 80, 10);
  publish new StockQuote("Acme Corp", 120, 3);
  publish new StockQuote("Telco Fixnet", 150, 5);
}

process broker {
  Subscription s = subscribe (StockQuote q) {
    return q.getPrice() < 100 && q.getCompany().indexOf("Telco") != -1;
  } {
    print("Got offer: " + q.getCompany());
  };
  s.activate();
}
|}

let test_parse_program () =
  let program = Pparser.program_of_string stock_program in
  Alcotest.(check int) "five declarations" 5 (List.length program);
  match List.nth program 4 with
  | Ast.Process { pname = "broker"; body } -> (
      match body with
      | [ Ast.Subscribe sub; Ast.Activate ("s", None) ] ->
          Alcotest.(check string) "param type" "StockQuote" sub.Ast.param_type;
          Alcotest.(check string) "formal" "q" sub.Ast.formal;
          Alcotest.(check int) "one handler stmt" 1 (List.length sub.Ast.handler)
      | _ -> Alcotest.fail "unexpected broker body")
  | _ -> Alcotest.fail "expected broker process"

let test_parse_roundtrip_via_pp () =
  let program = Pparser.program_of_string stock_program in
  let printed = Fmt.str "%a" Ast.pp_program program in
  let reparsed = Pparser.program_of_string printed in
  Alcotest.(check int) "same number of declarations" (List.length program)
    (List.length reparsed)

let test_compile_report () =
  let compiled = Compile.compile_string stock_program in
  (* Adapters for the interface and both classes (all obvent types). *)
  Alcotest.(check int) "three adapters" 3
    (List.length compiled.Compile.adapters);
  (match compiled.Compile.sub_plans with
  | [ sp ] -> (
      Alcotest.(check string) "subscription in broker" "broker"
        sp.Compile.sp_process;
      match sp.Compile.sp_class with
      | Compile.Remote_filter rf ->
          Alcotest.(check int) "two invocation paths" 2
            (Array.length rf.Rfilter.paths)
      | _ -> Alcotest.fail "paper filter should lift to a RemoteFilter")
  | _ -> Alcotest.fail "expected one subscription plan");
  Alcotest.(check int) "three publishes" 3
    (List.length compiled.Compile.publish_types);
  (* The report pretty-prints without raising. *)
  let report = Fmt.str "%a" Compile.pp_plan compiled in
  let contains hay needle =
    let hn = String.length hay and nn = String.length needle in
    let found = ref false in
    (try
       for i = 0 to hn - nn do
         if String.sub hay i nn = needle then begin
           found := true;
           raise Exit
         end
       done
     with Exit -> ());
    !found
  in
  Alcotest.(check bool) "report mentions StockQuoteAdapter" true
    (contains report "StockQuoteAdapter")

let test_run_stock_program () =
  let result = Interp.run_string ~seed:7 stock_program in
  let texts = List.map (fun o -> o.Interp.text) result.Interp.trace in
  Alcotest.(check (list string)) "only the matching quote printed"
    [ "Got offer: Telco Mobiles" ] texts;
  Alcotest.(check int) "three published" 3
    result.Interp.stats.Tpbs_core.Pubsub.Domain.published

let test_compile_errors () =
  let reject src =
    match Compile.compile_string src with
    | exception Compile.Compile_error _ -> ()
    | _ -> Alcotest.failf "accepted bad program: %s" src
  in
  (* Ill-typed filter: price is a double, compared to a string. *)
  reject
    {|
class Q implements Obvent { double price; }
process p {
  Subscription s = subscribe (Q q) { q.getPrice() < "cheap" } {};
}
|};
  (* Unknown type in subscription. *)
  reject {| process p { Subscription s = subscribe (Mystery m) { true } {}; } |};
  (* Publishing a non-obvent. *)
  reject {| process p { publish 42; } |};
  (* Unknown method on the formal. *)
  reject
    {|
class Q implements Obvent { double price; }
process p { Subscription s = subscribe (Q q) { q.getVolume() > 1 } {}; }
|};
  (* Subscription methods on a non-subscription variable. *)
  reject
    {|
class Q implements Obvent { double price; }
process p { final int x = 3; x.activate(); }
|};
  (* Constructor arity mismatch. *)
  reject
    {|
class Q implements Obvent { double price; }
process p { publish new Q(1, 2); }
|};
  (* Duplicate process names. *)
  reject {| process p {} process p {} |}

let test_captured_finals () =
  let src =
    {|
class Q implements Obvent { double price; }
process pub {
  publish new Q(10);
  publish new Q(99);
}
process sub {
  final double limit = 50;
  Subscription s = subscribe (Q q) { q.getPrice() < limit } {
    print("cheap");
  };
  s.activate();
}
|}
  in
  let result = Interp.run_string src in
  Alcotest.(check int) "only the cheap quote" 1
    (List.length result.Interp.trace)

let test_handler_publishes () =
  (* A handler that republishes: the obvent-to-obvent flow of §5.3. *)
  let src =
    {|
class Request implements Obvent { String what; }
class Response implements Obvent { String what; }
process server {
  Subscription s = subscribe (Request r) { true } {
    publish new Response(r.getWhat());
  };
  s.activate();
}
process client {
  Subscription s = subscribe (Response r) { true } {
    print("answered: " + r.getWhat());
  };
  s.activate();
  publish new Request("job");
}
|}
  in
  let result = Interp.run_string src in
  let texts = List.map (fun o -> o.Interp.text) result.Interp.trace in
  Alcotest.(check (list string)) "request answered" [ "answered: job" ] texts

let test_self_deactivation () =
  (* §3.4.2: a subscription can cancel itself from inside its handler. *)
  let src =
    {|
class Ping implements Obvent { int n; }
process pub {
  publish new Ping(1);
  publish new Ping(2);
  publish new Ping(3);
}
process sub {
  Subscription s = subscribe (Ping p) { true } {
    print("got one");
    s.deactivate();
  };
  s.activate();
}
|}
  in
  let result = Interp.run_string ~seed:3 src in
  Alcotest.(check int) "only the first delivery" 1
    (List.length result.Interp.trace)

let test_durable_activation_syntax () =
  let src =
    {|
class CQ implements Certified { int n; }
process pub { publish new CQ(7); }
process sub {
  Subscription s = subscribe (CQ q) { true } { print("certified"); };
  s.activate(42);
}
|}
  in
  let result = Interp.run_string src in
  Alcotest.(check int) "delivered over certified channel" 1
    (List.length result.Interp.trace)

let test_local_filter_classification () =
  (* A filter observing an object-typed captured variable must be kept
     local (§3.3.4). We cannot express that via `final` of object type
     in the mini language easily — instead use a variable-free filter
     known to be non-liftable: arithmetic between two paths. *)
  let src =
    {|
class Q implements Obvent { double price; int amount; }
process p {
  Subscription s = subscribe (Q q) { q.getPrice() * q.getAmount() > 100 } {};
}
|}
  in
  let compiled = Compile.compile_string src in
  match compiled.Compile.sub_plans with
  | [ sp ] -> (
      match sp.Compile.sp_class with
      | Compile.Mobile_tree -> ()
      | _ -> Alcotest.fail "expected mobile expression tree")
  | _ -> Alcotest.fail "expected one plan"

let test_broker_run () =
  let result = Interp.run_string ~broker:true stock_program in
  let texts = List.map (fun o -> o.Interp.text) result.Interp.trace in
  Alcotest.(check (list string)) "same behaviour through the broker"
    [ "Got offer: Telco Mobiles" ] texts;
  Alcotest.(check bool) "events transited the broker" true
    (result.Interp.stats.Tpbs_core.Pubsub.Domain.broker_events = 3)

let test_if_statements () =
  let src =
    {|
class Q implements Obvent { String company; double price; }
process market {
  publish new Q("Telco", 80);
  publish new Q("Acme", 80);
}
process desk {
  Subscription s = subscribe (Q q) { true } {
    if (q.getCompany().startsWith("Telco")) {
      print("telco: " + q.getCompany());
    } else {
      print("other: " + q.getCompany());
    }
    if (q.getPrice() < 100) { print("cheap"); }
  };
  s.activate();
}
|}
  in
  let result = Interp.run_string ~seed:2 src in
  let texts =
    List.sort String.compare (List.map (fun o -> o.Interp.text) result.Interp.trace)
  in
  Alcotest.(check (list string)) "branches taken correctly"
    [ "cheap"; "cheap"; "other: Acme"; "telco: Telco" ]
    texts

let test_if_requires_boolean () =
  match
    Compile.compile_string
      {|
class Q implements Obvent { double price; }
process p { if (3) { print("no"); } }
|}
  with
  | exception Compile.Compile_error _ -> ()
  | _ -> Alcotest.fail "non-boolean if condition accepted"

let test_if_bindings_do_not_escape () =
  match
    Compile.compile_string
      {|
class Q implements Obvent { double price; }
process p {
  if (true) { final int x = 1; }
  print(x);
}
|}
  with
  | exception Compile.Compile_error _ -> ()
  | _ -> Alcotest.fail "branch-local binding escaped"

let test_thread_policy_statements () =
  let src =
    {|
class Job implements Obvent { int n; }
process pub {
  publish new Job(1);
  publish new Job(2);
  publish new Job(3);
}
process worker {
  Subscription s = subscribe (Job j) { true } { print("job"); };
  s.setSingleThreading();
  s.activate();
  Subscription m = subscribe (Job j) { true } { print("job2"); };
  m.setMultiThreading(2);
  m.activate();
}
|}
  in
  let result = Interp.run_string src in
  Alcotest.(check int) "both subscriptions delivered everything" 6
    (List.length result.Interp.trace)

let test_if_pp_roundtrip () =
  let src =
    {|
class Q implements Obvent { double price; }
process p {
  if (true) { print("a"); } else { print("b"); }
  Subscription s = subscribe (Q q) { q.getPrice() < 10 } {
    if (q.getPrice() < 5) { print("tiny"); }
  };
  s.activate();
}
|}
  in
  let program = Pparser.program_of_string src in
  let printed = Fmt.str "%a" Tpbs_psc.Ast.pp_program program in
  let reparsed = Pparser.program_of_string printed in
  (* Reprinting the reparsed program must be a fixpoint. *)
  Alcotest.(check string) "pp/parse/pp fixpoint" printed
    (Fmt.str "%a" Tpbs_psc.Ast.pp_program reparsed)

let test_parse_error_positions () =
  match Pparser.program_of_string "process p { publish ; }" with
  | exception Pparser.Parse_error (pos, _) ->
      Alcotest.(check int) "error on line 1" 1 pos.Tpbs_filter.Lexer.line
  | _ -> Alcotest.fail "bad program accepted"

let test_empty_program () =
  Alcotest.(check int) "empty program compiles" 0
    (List.length (Compile.compile_string "").Compile.sub_plans)

module Edl = Tpbs_psc.Edl

let test_edl_roundtrip () =
  (* §5.6: export the stock lattice as an EDL schema, import on a
     "different node", get an equivalent registry. *)
  let reg = Registry.create () in
  Registry.declare_class reg ~name:"StockObvent" ~implements:[ "Obvent" ]
    ~attrs:
      [ "company", Tpbs_types.Vtype.Tstring; "price", Tpbs_types.Vtype.Tfloat;
        "amount", Tpbs_types.Vtype.Tint ]
    ();
  Registry.declare_class reg ~name:"StockQuote" ~extends:"StockObvent" ();
  Registry.declare_interface reg ~name:"Urgent"
    ~extends:[ "Prioritary"; "Timely" ]
    ();
  Registry.declare_class reg ~name:"UrgentQuote" ~extends:"StockQuote"
    ~implements:[ "Urgent" ]
    ~attrs:
      [ "priority", Tpbs_types.Vtype.Tint;
        "timeToLive", Tpbs_types.Vtype.Tint; "birth", Tpbs_types.Vtype.Tint ]
    ();
  let schema = Edl.export reg in
  let imported = Edl.import schema in
  Alcotest.(check bool) "equivalent after roundtrip" true
    (Edl.equivalent reg imported);
  (* Double roundtrip is a fixpoint. *)
  Alcotest.(check string) "schema fixpoint" schema (Edl.export imported)

let test_edl_rejects_remote_attributes () =
  let reg = Registry.create () in
  Registry.declare_class reg ~name:"LinkedQuote" ~implements:[ "Obvent" ]
    ~attrs:[ "market", Tpbs_types.Vtype.Tremote "StockMarket" ]
    ();
  match Edl.export reg with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "remote attribute exported"

let test_edl_rejects_processes () =
  match Edl.import "process p { }" with
  | exception Compile.Compile_error _ -> ()
  | _ -> Alcotest.fail "EDL accepted a process block"

let test_edl_import_into_conflicts () =
  let reg = Registry.create () in
  Registry.declare_class reg ~name:"Q" ~implements:[ "Obvent" ] ();
  match Edl.import_into reg "class Q implements Obvent { }" with
  | exception Compile.Compile_error _ -> ()
  | _ -> Alcotest.fail "conflicting import accepted"

let suite =
  ( "psc",
    [ Alcotest.test_case "parse the stock program" `Quick test_parse_program;
      Alcotest.test_case "pp/parse roundtrip" `Quick
        test_parse_roundtrip_via_pp;
      Alcotest.test_case "compile report (adapters, Fig. 6)" `Quick
        test_compile_report;
      Alcotest.test_case "run the paper's example (§2.3.3)" `Quick
        test_run_stock_program;
      Alcotest.test_case "compile-time errors (LP1)" `Quick
        test_compile_errors;
      Alcotest.test_case "captured final variables" `Quick
        test_captured_finals;
      Alcotest.test_case "handler republishes (§5.3)" `Quick
        test_handler_publishes;
      Alcotest.test_case "self-deactivation (§3.4.2)" `Quick
        test_self_deactivation;
      Alcotest.test_case "durable activation syntax (§3.4.1)" `Quick
        test_durable_activation_syntax;
      Alcotest.test_case "filter classification (§4.4.3)" `Quick
        test_local_filter_classification;
      Alcotest.test_case "run through the broker" `Quick test_broker_run;
      Alcotest.test_case "if statements" `Quick test_if_statements;
      Alcotest.test_case "if requires boolean" `Quick test_if_requires_boolean;
      Alcotest.test_case "if bindings scoped" `Quick
        test_if_bindings_do_not_escape;
      Alcotest.test_case "thread policy statements" `Quick
        test_thread_policy_statements;
      Alcotest.test_case "if pp fixpoint" `Quick test_if_pp_roundtrip;
      Alcotest.test_case "parse error positions" `Quick
        test_parse_error_positions;
      Alcotest.test_case "empty program" `Quick test_empty_program;
      Alcotest.test_case "EDL: schema roundtrip (§5.6)" `Quick
        test_edl_roundtrip;
      Alcotest.test_case "EDL: rejects process blocks" `Quick
        test_edl_rejects_processes;
      Alcotest.test_case "EDL: rejects remote attributes" `Quick
        test_edl_rejects_remote_attributes;
      Alcotest.test_case "EDL: import conflicts" `Quick
        test_edl_import_into_conflicts ] )
