open Helpers
module Typecheck = Tpbs_filter.Typecheck
module Mobility = Tpbs_filter.Mobility
module Rfilter = Tpbs_filter.Rfilter
module Factored = Tpbs_filter.Factored
module Subsume = Tpbs_filter.Subsume
module Parser = Tpbs_filter.Parser

(* The paper's running example filter:
   q.getPrice() < 100 && q.getCompany().indexOf("Telco") != -1 *)
let telco_filter =
  Expr.(
    getter [ "getPrice" ] <. float 100.
    &&& Binop
          (Ne, Binop (Index_of, getter [ "getCompany" ], str "Telco"), int (-1)))

(* --- evaluation ----------------------------------------------------- *)

let test_eval_paper_example () =
  let reg = stock_registry () in
  let yes = quote reg ~company:"Telco Mobiles" ~price:80. () in
  let no_price = quote reg ~company:"Telco Mobiles" ~price:150. () in
  let no_company = quote reg ~company:"Acme" ~price:80. () in
  Alcotest.(check bool) "matches" true
    (Expr.eval_bool reg ~env:[] ~arg:yes telco_filter);
  Alcotest.(check bool) "price too high" false
    (Expr.eval_bool reg ~env:[] ~arg:no_price telco_filter);
  Alcotest.(check bool) "wrong company" false
    (Expr.eval_bool reg ~env:[] ~arg:no_company telco_filter)

let test_eval_vars () =
  let reg = stock_registry () in
  let q = quote reg ~price:80. () in
  let e = Expr.(getter [ "getPrice" ] <. Var "limit") in
  Alcotest.(check bool) "captured variable" true
    (Expr.eval_bool reg ~env:[ "limit", Value.Float 100. ] ~arg:q e);
  Alcotest.(check bool) "tighter limit" false
    (Expr.eval_bool reg ~env:[ "limit", Value.Float 50. ] ~arg:q e);
  match Expr.eval_bool reg ~env:[] ~arg:q e with
  | exception Expr.Eval_error _ -> ()
  | _ -> Alcotest.fail "unbound variable should raise"

let test_eval_numeric_promotion () =
  let reg = stock_registry () in
  let q = quote reg ~price:80. ~amount:10 () in
  Alcotest.(check bool) "int literal against float getter" true
    (Expr.eval_bool reg ~env:[] ~arg:q Expr.(getter [ "getPrice" ] =. int 80));
  Alcotest.(check bool) "arithmetic mixing" true
    (Expr.eval_bool reg ~env:[] ~arg:q
       Expr.(
         Binop (Mul, getter [ "getPrice" ], getter [ "getAmount" ])
         >. float 799.))

let test_eval_division_by_zero () =
  let reg = stock_registry () in
  let q = quote reg () in
  match
    Expr.eval reg ~env:[] ~arg:q
      Expr.(Binop (Div, getter [ "getAmount" ], int 0))
  with
  | exception Expr.Eval_error _ -> ()
  | _ -> Alcotest.fail "division by zero should raise"

let test_eval_short_circuit () =
  let reg = stock_registry () in
  let q = quote reg () in
  (* The right operand would raise, but && short-circuits. *)
  let e =
    Expr.(
      bool false &&& Binop (Div, int 1, int 0) =. int 1)
  in
  Alcotest.(check bool) "short circuit and" false
    (Expr.eval_bool reg ~env:[] ~arg:q e);
  let e =
    Expr.(bool true ||| (Binop (Div, int 1, int 0) =. int 1))
  in
  Alcotest.(check bool) "short circuit or" true
    (Expr.eval_bool reg ~env:[] ~arg:q e)

let test_eval_string_ops () =
  let reg = stock_registry () in
  let q = quote reg ~company:"Telco Mobiles" () in
  let company = Expr.getter [ "getCompany" ] in
  Alcotest.check value_testable "indexOf found" (Value.Int 6)
    (Expr.eval reg ~env:[] ~arg:q
       Expr.(Binop (Index_of, company, str "Mobiles")));
  Alcotest.check value_testable "indexOf missing" (Value.Int (-1))
    (Expr.eval reg ~env:[] ~arg:q Expr.(Binop (Index_of, company, str "zzz")));
  Alcotest.check value_testable "length" (Value.Int 13)
    (Expr.eval reg ~env:[] ~arg:q Expr.(Unop (Length, company)));
  Alcotest.check value_testable "startsWith" (Value.Bool true)
    (Expr.eval reg ~env:[] ~arg:q
       Expr.(Binop (Starts_with, company, str "Telco")))

let test_getter_paths () =
  let paths = Expr.getter_paths telco_filter in
  Alcotest.(check int) "two distinct paths" 2 (List.length paths);
  Alcotest.(check bool) "getPrice path present" true
    (List.mem [ "getPrice" ] paths);
  Alcotest.(check bool) "getCompany path present" true
    (List.mem [ "getCompany" ] paths)

(* --- typechecking --------------------------------------------------- *)

let check_ill_typed name reg ?(vars = []) ~param e =
  match Typecheck.check_filter reg ~param ~vars e with
  | () -> Alcotest.fail (name ^ ": expected Ill_typed")
  | exception Typecheck.Ill_typed _ -> ()

let test_typecheck_ok () =
  let reg = stock_registry () in
  Typecheck.check_filter reg ~param:"StockQuote" ~vars:[] telco_filter;
  Typecheck.check_filter reg ~param:"StockQuote"
    ~vars:[ "limit", Vtype.Tfloat ]
    Expr.(getter [ "getPrice" ] <. Var "limit")

let test_typecheck_errors () =
  let reg = stock_registry () in
  check_ill_typed "unknown method" reg ~param:"StockQuote"
    Expr.(getter [ "getNope" ] =. int 1);
  check_ill_typed "non-boolean filter" reg ~param:"StockQuote"
    (Expr.getter [ "getPrice" ]);
  check_ill_typed "string < int" reg ~param:"StockQuote"
    Expr.(getter [ "getCompany" ] <. int 3);
  check_ill_typed "unbound var" reg ~param:"StockQuote"
    Expr.(Var "limit" <. int 3);
  check_ill_typed "arith on bool" reg ~param:"StockQuote"
    Expr.(Binop (Add, bool true, int 1) =. int 2);
  check_ill_typed "param not an obvent type" reg ~param:"NopeType"
    (Expr.bool true);
  (* Subscribing to an interface and using a subtype-only method. *)
  check_ill_typed "method of subtype not visible on supertype" reg
    ~param:"Obvent"
    Expr.(getter [ "getPrice" ] <. int 3)

let test_typecheck_supertype_methods_visible () =
  let reg = stock_registry () in
  (* getCompany is declared on StockObvent, usable on SpotPrice. *)
  Typecheck.check_filter reg ~param:"SpotPrice" ~vars:[]
    Expr.(Binop (Eq, getter [ "getCompany" ], str "X"))

let test_typecheck_interface_param () =
  let reg = stock_registry () in
  (* Subscribing to the abstract type StockObvent (Fig. 1). *)
  Typecheck.check_filter reg ~param:"StockObvent" ~vars:[]
    Expr.(getter [ "getPrice" ] <. float 100.)

(* --- mobility -------------------------------------------------------- *)

let test_mobility_mobile () =
  let reg = stock_registry () in
  Alcotest.(check bool) "paper filter is mobile" true
    (Mobility.classify reg ~param:"StockQuote" ~vars:[] telco_filter
    = Mobility.Mobile)

let test_mobility_nonprimitive_var () =
  let reg = stock_registry () in
  let verdict =
    Mobility.classify reg ~param:"StockQuote"
      ~vars:[ "template", Vtype.Tobject "StockQuote" ]
      Expr.(Var "template" =. getter [ "getCompany" ])
  in
  match verdict with
  | Mobility.Local_only [ Mobility.Nonprimitive_variable ("template", _) ] -> ()
  | _ -> Alcotest.fail "expected non-primitive variable reason"

let test_mobility_remote_value () =
  let reg = stock_registry () in
  Registry.declare_class reg ~name:"LinkedQuote" ~extends:"StockQuote"
    ~attrs:[ "market", Vtype.Tremote "StockMarket" ]
    ();
  let verdict =
    Mobility.classify reg ~param:"LinkedQuote" ~vars:[]
      Expr.(Unop (Is_null, getter [ "getMarket" ]))
  in
  match verdict with
  | Mobility.Local_only (Mobility.Remote_value _ :: _) -> ()
  | _ -> Alcotest.fail "expected remote-value reason"

(* --- remote filters (invocation/evaluation trees) ------------------- *)

let test_rfilter_normalization () =
  match Rfilter.of_expr ~env:[] ~param:"StockQuote" telco_filter with
  | None -> Alcotest.fail "paper filter should normalize"
  | Some rf ->
      Alcotest.(check int) "two invocation paths" 2 (Array.length rf.paths);
      (match rf.formula with
      | Rfilter.And [ Atom a; Atom b ] ->
          Alcotest.(check bool) "price atom" true
            (a.path = [ "getPrice" ] && a.cmp = Rfilter.Clt);
          Alcotest.(check bool) "indexOf became contains" true
            (b.path = [ "getCompany" ] && b.cmp = Rfilter.Ccontains)
      | f ->
          Alcotest.failf "unexpected formula %a" Rfilter.pp_formula f)

let test_rfilter_env_substitution () =
  let e = Expr.(getter [ "getPrice" ] <. Var "limit") in
  match
    Rfilter.of_expr ~env:[ "limit", Value.Float 100. ] ~param:"StockQuote" e
  with
  | Some rf ->
      (match rf.formula with
      | Rfilter.Atom { const = Value.Float 100.; _ } -> ()
      | f -> Alcotest.failf "expected substituted constant, got %a"
               Rfilter.pp_formula f)
  | None -> Alcotest.fail "should normalize with bound variable"

let test_rfilter_unnormalizable () =
  (* Arithmetic between two paths has no atom form. *)
  let e =
    Expr.(
      Binop (Mul, getter [ "getPrice" ], getter [ "getAmount" ]) >. float 100.)
  in
  Alcotest.(check bool) "not normalizable" true
    (Rfilter.of_expr ~env:[] ~param:"StockQuote" e = None)

let test_rfilter_always_true () =
  match Rfilter.of_expr ~env:[] ~param:"StockQuote" (Expr.bool true) with
  | Some rf -> Alcotest.(check bool) "always true" true (Rfilter.always_true rf)
  | None -> Alcotest.fail "true should normalize"

let test_rfilter_wire_roundtrip () =
  match Rfilter.of_expr ~env:[] ~param:"StockQuote" telco_filter with
  | None -> Alcotest.fail "should normalize"
  | Some rf -> (
      let v = Rfilter.to_value rf in
      (* Through the codec, as a subscription message would travel. *)
      let v' = Tpbs_serial.Codec.decode (Tpbs_serial.Codec.encode v) in
      match Rfilter.of_value v' with
      | Some rf' ->
          Alcotest.(check bool) "same formula" true
            (rf.formula = rf'.formula && rf.param = rf'.param)
      | None -> Alcotest.fail "wire roundtrip failed")

let test_rfilter_of_value_garbage () =
  Alcotest.(check bool) "garbage rejected" true
    (Rfilter.of_value (Value.Int 3) = None);
  Alcotest.(check bool) "bad op code rejected" true
    (Rfilter.of_value
       (Value.List
          [ Str "StockQuote";
            List [ Str "atom"; List [ List []; Int 99; Null ] ] ])
    = None)

let prop_rfilter_matches_direct_eval =
  QCheck.Test.make
    ~name:"rfilter evaluation agrees with direct expression evaluation"
    ~count:500
    (QCheck.make
       ~print:(fun (e, _) -> Expr.to_string e)
       QCheck.Gen.(pair gen_stock_expr (gen_quote (stock_registry ()))))
    (fun (e, q) ->
      let reg = stock_registry () in
      match Rfilter.of_expr ~env:[] ~param:"StockQuote" e with
      | None -> QCheck.assume_fail ()
      | Some rf -> (
          match Expr.eval_bool reg ~env:[] ~arg:q e with
          | direct -> Rfilter.matches_obvent rf q = direct
          | exception Expr.Eval_error _ -> true))

let prop_rfilter_to_expr_roundtrip =
  QCheck.Test.make ~name:"to_expr of a remote filter evaluates identically"
    ~count:300
    (QCheck.make
       ~print:(fun (e, _) -> Expr.to_string e)
       QCheck.Gen.(pair gen_stock_expr (gen_quote (stock_registry ()))))
    (fun (e, q) ->
      let reg = stock_registry () in
      match Rfilter.of_expr ~env:[] ~param:"StockQuote" e with
      | None -> QCheck.assume_fail ()
      | Some rf ->
          let back = Rfilter.to_expr rf in
          (match Expr.eval_bool reg ~env:[] ~arg:q back with
          | b -> b = Rfilter.matches_obvent rf q
          | exception Expr.Eval_error _ -> false))

(* --- factored compound filters -------------------------------------- *)

let add_filters factored exprs =
  List.iteri
    (fun i e ->
      match Rfilter.of_expr ~env:[] ~param:"StockQuote" e with
      | Some rf -> Factored.add factored ~id:i rf
      | None -> ())
    exprs

let test_factored_basic () =
  let reg = stock_registry () in
  let f = Factored.create () in
  let cheap = Expr.(getter [ "getPrice" ] <. float 100.) in
  let telco =
    Expr.(Binop (Contains, getter [ "getCompany" ], str "Telco"))
  in
  let both = Expr.(cheap &&& telco) in
  add_filters f [ cheap; telco; both ];
  let q = quote reg ~company:"Telco Mobiles" ~price:80. () in
  Alcotest.(check (list int)) "all three match" [ 0; 1; 2 ]
    (Factored.matches_obvent f q);
  let q = quote reg ~company:"Acme" ~price:80. () in
  Alcotest.(check (list int)) "only cheap" [ 0 ] (Factored.matches_obvent f q);
  let q = quote reg ~company:"Telco Mobiles" ~price:200. () in
  Alcotest.(check (list int)) "only telco" [ 1 ] (Factored.matches_obvent f q)

let test_factored_sharing () =
  let f = Factored.create () in
  (* 100 identical subscriptions: one unique atom. *)
  let e = Expr.(getter [ "getPrice" ] <. float 100.) in
  List.iteri
    (fun i e ->
      match Rfilter.of_expr ~env:[] ~param:"StockQuote" e with
      | Some rf -> Factored.add f ~id:i rf
      | None -> Alcotest.fail "normalizes")
    (List.init 100 (fun _ -> e));
  let s = Factored.stats f in
  Alcotest.(check int) "subscriptions" 100 s.Factored.subscriptions;
  Alcotest.(check int) "unique atoms" 1 s.Factored.unique_atoms;
  Alcotest.(check int) "unique paths" 1 s.Factored.unique_paths;
  Alcotest.(check int) "total atoms" 100 s.Factored.total_atoms;
  Alcotest.(check bool) "high redundancy" true (Factored.redundancy f > 0.98)

let test_factored_remove () =
  let reg = stock_registry () in
  let f = Factored.create () in
  add_filters f
    [ Expr.(getter [ "getPrice" ] <. float 100.);
      Expr.(getter [ "getPrice" ] <. float 200.) ];
  Factored.remove f ~id:0;
  let q = quote reg ~price:50. () in
  Alcotest.(check (list int)) "only remaining" [ 1 ]
    (Factored.matches_obvent f q);
  Alcotest.(check bool) "id 0 gone" false (Factored.is_registered f ~id:0);
  Factored.remove f ~id:42 (* unknown: ignored *)

let test_factored_duplicate_id_rejected () =
  let f = Factored.create () in
  let rf =
    Option.get
      (Rfilter.of_expr ~env:[] ~param:"StockQuote" (Expr.bool true))
  in
  Factored.add f ~id:1 rf;
  match Factored.add f ~id:1 rf with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate id accepted"

let prop_factored_agrees_with_individual =
  QCheck.Test.make
    ~name:"factored matching = per-filter rfilter evaluation" ~count:200
    (QCheck.make
       ~print:(fun (es, _) ->
         String.concat " ; " (List.map Expr.to_string es))
       QCheck.Gen.(
         pair
           (list_size (int_range 0 25) gen_stock_expr)
           (gen_quote (stock_registry ()))))
    (fun (es, q) ->
      let rfs =
        List.filter_map (Rfilter.of_expr ~env:[] ~param:"StockQuote") es
      in
      let f = Factored.create () in
      List.iteri (fun i rf -> Factored.add f ~id:i rf) rfs;
      let expected =
        List.filteri (fun _ _ -> true) rfs
        |> List.mapi (fun i rf -> i, Rfilter.matches_obvent rf q)
        |> List.filter snd |> List.map fst
      in
      Factored.matches_obvent f q = expected)

let prop_factored_remove_consistent =
  QCheck.Test.make ~name:"factored remove leaves remaining filters intact"
    ~count:100
    (QCheck.make
       ~print:(fun (es, _) -> String.concat ";" (List.map Expr.to_string es))
       QCheck.Gen.(
         pair
           (list_size (int_range 2 12) gen_stock_expr)
           (gen_quote (stock_registry ()))))
    (fun (es, q) ->
      let rfs =
        List.filter_map (Rfilter.of_expr ~env:[] ~param:"StockQuote") es
      in
      QCheck.assume (List.length rfs >= 2);
      let f = Factored.create () in
      List.iteri (fun i rf -> Factored.add f ~id:i rf) rfs;
      Factored.remove f ~id:0;
      let expected =
        List.mapi (fun i rf -> i, Rfilter.matches_obvent rf q) rfs
        |> List.filter (fun (i, m) -> i <> 0 && m)
        |> List.map fst
      in
      Factored.matches_obvent f q = expected)

(* --- subsumption ----------------------------------------------------- *)

let rf_of e = Option.get (Rfilter.of_expr ~env:[] ~param:"StockQuote" e)

let test_subsume_examples () =
  let lt50 = rf_of Expr.(getter [ "getPrice" ] <. float 50.) in
  let lt100 = rf_of Expr.(getter [ "getPrice" ] <. float 100.) in
  let telco = rf_of Expr.(Binop (Contains, getter [ "getCompany" ], str "Telco")) in
  let telco_mob =
    rf_of Expr.(Binop (Eq, getter [ "getCompany" ], str "Telco Mobiles"))
  in
  let both = rf_of Expr.(getter [ "getPrice" ] <. float 50.
                         &&& Binop (Contains, getter [ "getCompany" ], str "Telco"))
  in
  Alcotest.(check bool) "<50 implies <100" true (Subsume.implies lt50 lt100);
  Alcotest.(check bool) "<100 does not imply <50" false
    (Subsume.implies lt100 lt50);
  Alcotest.(check bool) "== Telco Mobiles implies contains Telco" true
    (Subsume.implies telco_mob telco);
  Alcotest.(check bool) "conjunction implies each conjunct" true
    (Subsume.implies both lt100 && Subsume.implies both telco);
  Alcotest.(check bool) "everything implies true" true
    (Subsume.implies lt50 (rf_of (Expr.bool true)));
  Alcotest.(check bool) "different paths unrelated" false
    (Subsume.implies lt50 telco);
  Alcotest.(check bool) "equivalent to itself" true
    (Subsume.equivalent lt50 lt50)

let test_count_covered () =
  let filters =
    [ rf_of Expr.(getter [ "getPrice" ] <. float 50.);
      rf_of Expr.(getter [ "getPrice" ] <. float 100.);
      rf_of Expr.(Binop (Contains, getter [ "getCompany" ], str "Telco")) ]
  in
  (* <50 is covered by <100. *)
  Alcotest.(check int) "one covered" 1 (Subsume.count_covered filters)

let prop_subsume_sound =
  QCheck.Test.make
    ~name:"implies is sound: a matches ⇒ b matches" ~count:400
    (QCheck.make
       ~print:(fun (a, b, _) ->
         Expr.to_string a ^ " => " ^ Expr.to_string b)
       QCheck.Gen.(
         triple gen_stock_expr gen_stock_expr (gen_quote (stock_registry ()))))
    (fun (ea, eb, q) ->
      match
        ( Rfilter.of_expr ~env:[] ~param:"StockQuote" ea,
          Rfilter.of_expr ~env:[] ~param:"StockQuote" eb )
      with
      | Some a, Some b ->
          (not (Subsume.implies a b))
          || (not (Rfilter.matches_obvent a q))
          || Rfilter.matches_obvent b q
      | _ -> QCheck.assume_fail ())

let test_typecheck_string_plus () =
  let reg = stock_registry () in
  (* Java's overloaded +. *)
  Typecheck.check_filter reg ~param:"StockQuote" ~vars:[]
    Expr.(
      Binop
        ( Eq,
          Binop (Add, str "a", getter [ "getCompany" ]),
          str "aTelco Mobiles" ));
  check_ill_typed "string + int" reg ~param:"StockQuote"
    Expr.(Binop (Eq, Binop (Add, str "a", int 1), str "a1"))

let test_factored_readd_after_remove () =
  let f = Factored.create () in
  let rf = rf_of Expr.(getter [ "getPrice" ] <. float 50.) in
  Factored.add f ~id:7 rf;
  Factored.remove f ~id:7;
  Factored.add f ~id:7 rf;
  let reg = stock_registry () in
  let q = quote reg ~price:10. () in
  Alcotest.(check (list int)) "re-added id matches" [ 7 ]
    (Factored.matches_obvent f q)

let test_subsume_equality_implies_range () =
  let eq50 = rf_of Expr.(getter [ "getPrice" ] =. float 50.) in
  let lt100 = rf_of Expr.(getter [ "getPrice" ] <. float 100.) in
  let ge10 = rf_of Expr.(getter [ "getPrice" ] >=. float 10.) in
  Alcotest.(check bool) "==50 implies <100" true (Subsume.implies eq50 lt100);
  Alcotest.(check bool) "==50 implies >=10" true (Subsume.implies eq50 ge10);
  Alcotest.(check bool) "<100 does not imply ==50" false
    (Subsume.implies lt100 eq50)

(* --- parser ----------------------------------------------------------- *)

let test_parse_paper_filter () =
  let e =
    Parser.expr_of_string ~param:"q"
      "q.getPrice() < 100 && q.getCompany().indexOf(\"Telco\") != -1"
  in
  let reg = stock_registry () in
  Typecheck.check_filter reg ~param:"StockQuote" ~vars:[] e;
  let yes = quote reg ~company:"Telco Mobiles" ~price:80. () in
  Alcotest.(check bool) "parsed filter matches" true
    (Expr.eval_bool reg ~env:[] ~arg:yes e)

let test_parse_precedence () =
  let e = Parser.expr_of_string ~param:"q" "1 + 2 * 3 == 7" in
  let reg = stock_registry () in
  Alcotest.(check bool) "precedence" true
    (Expr.eval_bool reg ~env:[] ~arg:(quote reg ()) e);
  let e = Parser.expr_of_string ~param:"q" "(1 + 2) * 3 == 9" in
  Alcotest.(check bool) "parens" true
    (Expr.eval_bool reg ~env:[] ~arg:(quote reg ()) e)

let test_parse_methods () =
  let cases =
    [ "q.getCompany().contains(\"Telco\")";
      "q.getCompany().startsWith(\"Tel\")";
      "q.getCompany().length() > 2";
      "q.getCompany().equals(\"Telco Mobiles\")";
      "!(q.getPrice() >= 100.5) || false" ]
  in
  let reg = stock_registry () in
  List.iter
    (fun src ->
      let e = Parser.expr_of_string ~param:"q" src in
      Typecheck.check_filter reg ~param:"StockQuote" ~vars:[] e;
      Alcotest.(check bool) src true
        (Expr.eval_bool reg ~env:[] ~arg:(quote reg ()) e))
    cases

let test_parse_comments_and_vars () =
  let e =
    Parser.expr_of_string ~param:"q"
      "/* limit check */ q.getPrice() < limit // final var"
  in
  Alcotest.(check (list string)) "captured var" [ "limit" ] (Expr.vars e)

let test_parse_negative_literal_folds () =
  (* Regression: [-1] must parse as a constant so that the
     indexOf-idiom normalizes (§4.4.3). *)
  let e = Parser.expr_of_string ~param:"q" "q.getCompany().indexOf(\"T\") != -1" in
  match Rfilter.of_expr ~env:[] ~param:"StockQuote" e with
  | Some rf -> (
      match rf.Rfilter.formula with
      | Rfilter.Atom { cmp = Rfilter.Ccontains; _ } -> ()
      | f -> Alcotest.failf "expected contains atom, got %a" Rfilter.pp_formula f)
  | None -> Alcotest.fail "idiom did not normalize"

let test_parse_errors () =
  let bad = [ "q.getPrice() <"; "q.getPrice( < 3"; "\"unterminated"; "&& q"; "q.3" ] in
  List.iter
    (fun src ->
      match Parser.expr_of_string ~param:"q" src with
      | exception (Parser.Parse_error _ | Tpbs_filter.Lexer.Lex_error _) -> ()
      | _ -> Alcotest.fail ("accepted bad input: " ^ src))
    bad

let prop_parse_pp_roundtrip =
  QCheck.Test.make ~name:"printing then parsing preserves evaluation"
    ~count:300
    (QCheck.make
       ~print:(fun (e, _) -> Expr.to_string e)
       QCheck.Gen.(pair gen_stock_expr (gen_quote (stock_registry ()))))
    (fun (e, q) ->
      let reg = stock_registry () in
      let printed = Expr.to_string e in
      match Parser.expr_of_string ~param:"$arg" printed with
      | parsed -> (
          match
            ( Expr.eval_bool reg ~env:[] ~arg:q e,
              Expr.eval_bool reg ~env:[] ~arg:q parsed )
          with
          | a, b -> a = b
          | exception Expr.Eval_error _ -> true)
      | exception _ -> false)

let suite =
  ( "filter",
    [ Alcotest.test_case "paper example filter" `Quick test_eval_paper_example;
      Alcotest.test_case "captured variables" `Quick test_eval_vars;
      Alcotest.test_case "numeric promotion" `Quick
        test_eval_numeric_promotion;
      Alcotest.test_case "division by zero raises" `Quick
        test_eval_division_by_zero;
      Alcotest.test_case "short-circuit evaluation" `Quick
        test_eval_short_circuit;
      Alcotest.test_case "string operations" `Quick test_eval_string_ops;
      Alcotest.test_case "invocation paths" `Quick test_getter_paths;
      Alcotest.test_case "typecheck accepts valid filters" `Quick
        test_typecheck_ok;
      Alcotest.test_case "typecheck rejects invalid filters" `Quick
        test_typecheck_errors;
      Alcotest.test_case "supertype methods visible" `Quick
        test_typecheck_supertype_methods_visible;
      Alcotest.test_case "subscribe to abstract type" `Quick
        test_typecheck_interface_param;
      Alcotest.test_case "mobility: conforming filter" `Quick
        test_mobility_mobile;
      Alcotest.test_case "mobility: non-primitive variable" `Quick
        test_mobility_nonprimitive_var;
      Alcotest.test_case "mobility: remote value" `Quick
        test_mobility_remote_value;
      Alcotest.test_case "rfilter: normalization" `Quick
        test_rfilter_normalization;
      Alcotest.test_case "rfilter: env substitution" `Quick
        test_rfilter_env_substitution;
      Alcotest.test_case "rfilter: unnormalizable shapes" `Quick
        test_rfilter_unnormalizable;
      Alcotest.test_case "rfilter: always-true idiom" `Quick
        test_rfilter_always_true;
      Alcotest.test_case "rfilter: wire roundtrip" `Quick
        test_rfilter_wire_roundtrip;
      Alcotest.test_case "rfilter: of_value rejects garbage" `Quick
        test_rfilter_of_value_garbage;
      Alcotest.test_case "factored: basic matching" `Quick test_factored_basic;
      Alcotest.test_case "factored: atom sharing" `Quick test_factored_sharing;
      Alcotest.test_case "factored: removal" `Quick test_factored_remove;
      Alcotest.test_case "factored: duplicate id rejected" `Quick
        test_factored_duplicate_id_rejected;
      Alcotest.test_case "subsume: examples" `Quick test_subsume_examples;
      Alcotest.test_case "subsume: equality implies range" `Quick
        test_subsume_equality_implies_range;
      Alcotest.test_case "typecheck: string + overload" `Quick
        test_typecheck_string_plus;
      Alcotest.test_case "factored: re-add after remove" `Quick
        test_factored_readd_after_remove;
      Alcotest.test_case "parser: negative literal folding" `Quick
        test_parse_negative_literal_folds;
      Alcotest.test_case "subsume: count covered" `Quick test_count_covered;
      Alcotest.test_case "parser: paper filter" `Quick test_parse_paper_filter;
      Alcotest.test_case "parser: precedence" `Quick test_parse_precedence;
      Alcotest.test_case "parser: library methods" `Quick test_parse_methods;
      Alcotest.test_case "parser: comments and variables" `Quick
        test_parse_comments_and_vars;
      Alcotest.test_case "parser: errors" `Quick test_parse_errors ]
    @ List.map QCheck_alcotest.to_alcotest
        [ prop_rfilter_matches_direct_eval; prop_rfilter_to_expr_roundtrip;
          prop_factored_agrees_with_individual;
          prop_factored_remove_consistent; prop_subsume_sound;
          prop_parse_pp_roundtrip ] )
