(* The sharded engine: stable class→shard keying, the engine tick
   barrier, the work-stealing domain pool, per-shard stats slices,
   sharded-vs-unsharded delivery equivalence (the qcheck property the
   refactor is held to), and a real multi-domain end-to-end run with
   cross-shard hand-off. *)

open Helpers
module Engine = Tpbs_sim.Engine
module Net = Tpbs_sim.Net
module Pubsub = Tpbs_core.Pubsub
module Shard = Tpbs_core.Shard
module Pool = Tpbs_core.Pool
module Domain = Pubsub.Domain
module Process = Pubsub.Process
module Subscription = Pubsub.Subscription

(* --- shard keying ----------------------------------------------------- *)

let leafs =
  [ "StockQuote"; "SpotPrice"; "MarketPrice"; "StockRequest"; "StockObvent";
    "CertQuote"; "Alarm"; "Tick" ]

let test_key_stable () =
  List.iter
    (fun cls ->
      Alcotest.(check int)
        (cls ^ " deterministic") (Shard.key ~n_shards:4 cls)
        (Shard.key ~n_shards:4 cls);
      Alcotest.(check int) (cls ^ " single shard") 0 (Shard.key ~n_shards:1 cls);
      List.iter
        (fun n ->
          let k = Shard.key ~n_shards:n cls in
          Alcotest.(check bool)
            (Printf.sprintf "%s in range at n=%d" cls n)
            true
            (k >= 0 && k < n))
        [ 2; 3; 4; 8 ])
    leafs;
  (* The partition actually spreads: over this class population at
     n_shards = 4, more than one shard is hit. *)
  let shards =
    List.sort_uniq Int.compare (List.map (Shard.key ~n_shards:4) leafs)
  in
  Alcotest.(check bool) "spreads over shards" true (List.length shards > 1)

(* --- the engine tick barrier ------------------------------------------ *)

let test_tick_barrier () =
  let engine = Engine.create () in
  let fired = ref [] in
  Engine.add_tick_barrier engine (fun () ->
      fired := Engine.now engine :: !fired);
  List.iter
    (fun delay -> Engine.schedule engine ~delay (fun () -> ()))
    [ 0; 5; 5; 9 ];
  Engine.run engine;
  (* Once per clock advancement (0→5, 5→9) plus once at drain — and
     never between the two actions at t = 5. *)
  Alcotest.(check (list int)) "fires between ticks" [ 0; 5; 9 ]
    (List.rev !fired)

let test_tick_barrier_schedules_followup () =
  let engine = Engine.create () in
  let ran = ref false in
  let armed = ref false in
  Engine.add_tick_barrier engine (fun () ->
      if not !armed then begin
        armed := true;
        Engine.schedule engine ~delay:3 (fun () -> ran := true)
      end);
  Engine.schedule engine ~delay:1 (fun () -> ());
  Engine.run engine;
  Alcotest.(check bool) "work scheduled by the barrier still runs" true !ran

(* --- the domain pool -------------------------------------------------- *)

let test_pool_executes_all () =
  let pool = Pool.create ~workers:2 ~shards:2 () in
  let hits = Atomic.make 0 in
  for i = 0 to 99 do
    Pool.submit pool ~shard:(i mod 2) (fun () -> Atomic.incr hits)
  done;
  Pool.barrier pool;
  Alcotest.(check int) "all tasks ran" 100 (Atomic.get hits);
  let st = Pool.stats pool in
  Alcotest.(check int) "tasks counted" 100 st.Pool.tasks;
  Alcotest.(check int) "nothing left queued" 0 st.Pool.queued;
  Pool.shutdown pool

let test_pool_steals_from_loaded_shard () =
  let pool = Pool.create ~workers:2 ~shards:2 () in
  let hits = Atomic.make 0 in
  (* Load only shard 0: one slow task plus a tail of quick ones. The
     worker pinned to shard 1 has nothing of its own and must steal. *)
  Pool.submit pool ~shard:0 (fun () ->
      Unix.sleepf 0.2;
      Atomic.incr hits);
  for _ = 1 to 10 do
    Pool.submit pool ~shard:0 (fun () -> Atomic.incr hits)
  done;
  Pool.barrier pool;
  Alcotest.(check int) "all tasks ran" 11 (Atomic.get hits);
  let st = Pool.stats pool in
  Alcotest.(check bool) "idle worker stole" true (st.Pool.steals > 0);
  Pool.shutdown pool

let test_pool_pressure_threshold () =
  let pool = Pool.create ~capacity:8 ~pressure:2 ~workers:1 ~shards:1 () in
  let release = Atomic.make false in
  (* Park the only worker, then stack the queue past the pressure
     threshold: the deep submits must be counted. *)
  Pool.submit pool ~shard:0 (fun () ->
      while not (Atomic.get release) do
        Stdlib.Domain.cpu_relax ()
      done);
  for _ = 1 to 4 do
    Pool.submit pool ~shard:0 (fun () -> ())
  done;
  Atomic.set release true;
  Pool.barrier pool;
  let st = Pool.stats pool in
  Alcotest.(check bool) "pressure events counted" true
    (st.Pool.pressure_events > 0);
  Pool.shutdown pool

(* --- shared scenario fixtures ----------------------------------------- *)

let scen_registry () =
  let reg = stock_registry () in
  Registry.declare_class reg ~name:"CertQuote" ~extends:"StockQuote"
    ~implements:[ "Certified" ] ();
  Registry.declare_class reg ~name:"Alarm" ~implements:[ "Prioritary" ]
    ~attrs:[ "source", Vtype.Tstring; "priority", Vtype.Tint ]
    ();
  reg

let setup ?(n = 4) ?(seed = 42) ?n_shards ?domains () =
  let reg = scen_registry () in
  let engine = Engine.create ~seed () in
  let net = Net.create engine in
  let domain = Domain.create ?n_shards ?domains reg net in
  let procs =
    Array.init n (fun _ -> Process.create domain (Net.add_node net))
  in
  reg, engine, net, domain, procs

let quote_of reg cls ?(company = "Telco Mobiles") ?(amount = 10) () =
  Obvent.make reg cls
    [ "company", Value.Str company; "price", Value.Float 80.;
      "amount", Value.Int amount ]

(* --- per-shard engine state ------------------------------------------- *)

let test_stats_merge_on_read () =
  let reg, engine, _net, domain, procs = setup ~n_shards:4 () in
  (* Classes owned by different shards (the population guarantees at
     least two distinct keys — assert rather than assume). *)
  let classes = [ "StockQuote"; "SpotPrice"; "MarketPrice"; "StockRequest" ] in
  let k0 = Domain.shard_of_class domain (List.hd classes) in
  Alcotest.(check bool) "classes span shards" true
    (List.exists (fun c -> Domain.shard_of_class domain c <> k0) classes);
  let s = Process.subscribe procs.(1) ~param:"StockObvent" (fun _ -> ()) in
  Subscription.activate s;
  List.iter
    (fun cls -> Process.publish procs.(0) (quote_of reg cls ()))
    classes;
  Engine.run engine;
  let merged = Domain.stats domain in
  let summed f =
    List.fold_left
      (fun acc k -> acc + f (Domain.stats_of_shard domain k))
      0 [ 0; 1; 2; 3 ]
  in
  Alcotest.(check int) "published merges" merged.Domain.published
    (summed (fun st -> st.Domain.published));
  Alcotest.(check int) "deliveries merge" merged.Domain.deliveries
    (summed (fun st -> st.Domain.deliveries));
  Alcotest.(check int) "all four published" 4 merged.Domain.published;
  Alcotest.(check int) "all four delivered" 4 merged.Domain.deliveries;
  (* The slices really are per-shard: no single shard saw everything. *)
  Alcotest.(check bool) "no shard owns all deliveries" true
    (List.for_all
       (fun k -> (Domain.stats_of_shard domain k).Domain.deliveries < 4)
       [ 0; 1; 2; 3 ]);
  Domain.reset_stats domain;
  Alcotest.(check int) "reset zeros every shard" 0
    (Domain.stats domain).Domain.published

(* --- sharded = unsharded (the refactor's contract) -------------------- *)

let params =
  [| "StockObvent"; "StockQuote"; "StockRequest"; "SpotPrice"; "CertQuote";
     "Alarm" |]

let event_classes =
  [| "StockQuote"; "SpotPrice"; "MarketPrice"; "CertQuote"; "Alarm" |]

(* Run one random scenario at a given shard count: 4 processes, a
   broker host, subscriptions on two processes, a publish batch
   covering plain, broker-routed, certified and prioritary (egress
   queue) classes. Returns per-subscription delivery logs and the
   merged stats. Timely classes are deliberately absent: expiry
   depends on drain timing, which sharding is allowed to change. *)
let run_scenario ~n_shards (sub_params, events) =
  let reg, engine, _net, domain, procs = setup ~seed:9 ~n_shards () in
  Pubsub.add_broker domain procs.(3);
  let logs =
    List.mapi
      (fun i pi ->
        let log = ref [] in
        let param = params.(pi mod Array.length params) in
        let s =
          Process.subscribe procs.(1 + (i mod 2)) ~param (fun o ->
              let id =
                match Obvent.cls o with
                | "Alarm" -> (
                    match Obvent.get o "source" with
                    | Value.Str s -> s
                    | _ -> "?")
                | _ -> (
                    match Obvent.get o "amount" with
                    | Value.Int n -> string_of_int n
                    | _ -> "?")
              in
              log := (Obvent.cls o, id) :: !log)
        in
        Subscription.activate s;
        param, log)
      sub_params
  in
  List.iteri
    (fun j ci ->
      let cls = event_classes.(ci mod Array.length event_classes) in
      let o =
        if cls = "Alarm" then
          Obvent.make reg "Alarm"
            [ "source", Value.Str (string_of_int j);
              "priority", Value.Int (j mod 3) ]
        else quote_of reg cls ~amount:j ()
      in
      Process.publish procs.(0) o)
    events;
  Engine.run engine;
  ( List.map (fun (param, log) -> param, List.rev !log) logs,
    Domain.stats domain )

let sharded_equivalent =
  QCheck.Test.make ~count:25
    ~name:"sharded engine = unsharded engine (n_shards in {2,4})"
    QCheck.(
      make
        Gen.(
          list_size (return 6) (int_range 0 (Array.length params - 1))
          >>= fun sub_params ->
          list_size (int_range 1 20)
            (int_range 0 (Array.length event_classes - 1))
          >>= fun events -> return (sub_params, events)))
    (fun scenario ->
      let base_logs, base_stats = run_scenario ~n_shards:1 scenario in
      List.for_all
        (fun n_shards ->
          let logs, stats = run_scenario ~n_shards scenario in
          (* Aggregate stats are shard-count independent. *)
          stats = base_stats
          && List.for_all2
               (fun (param, base) (param', log) ->
                 param = param'
                 (* Per-subscriber multiset: same events delivered. *)
                 && List.sort compare base = List.sort compare log
                 (* Per-(subscriber, class) order: within one class the
                    delivery sequence is exactly the unsharded one.
                    (Cross-class interleaving may differ: each shard
                    drains its own egress queue.) *)
                 && List.for_all
                      (fun cls ->
                        List.filter (fun (c, _) -> c = cls) base
                        = List.filter (fun (c, _) -> c = cls) log)
                      (Array.to_list event_classes))
               base_logs logs)
        [ 2; 4 ])

(* --- real domains: parallel dispatch + cross-shard hand-off ----------- *)

let test_multi_domain_end_to_end () =
  (* CI's sharded matrix sets TPBS_DOMAINS (1 and 4); default 2. At 1
     there is no pool — dispatch stays inline and the hand-off queue is
     bypassed — but the delivery contract below must hold regardless. *)
  let domains =
    match Sys.getenv_opt "TPBS_DOMAINS" with
    | Some s -> ( match int_of_string_opt s with Some n -> max 1 n | None -> 2)
    | None -> 2
  in
  let reg, engine, _net, domain, procs = setup ~n_shards:2 ~domains () in
  let handled = Atomic.make 0 in
  (* Handler A (Multi policy ⇒ runs on a pool worker) republishes into
     another class — a publish from off the engine thread, carried by
     the hand-off queue and applied at the next tick barrier. *)
  let s_quote =
    Process.subscribe procs.(1) ~param:"StockQuote" (fun o ->
        Atomic.incr handled;
        match Obvent.get o "amount" with
        | Value.Int n when n < 8 ->
            Process.publish procs.(1) (quote_of reg "SpotPrice" ~amount:100 ())
        | _ -> ())
  in
  let s_spot =
    Process.subscribe procs.(2) ~param:"SpotPrice" (fun _ ->
        Atomic.incr handled)
  in
  Subscription.activate s_quote;
  Subscription.activate s_spot;
  for i = 0 to 7 do
    Process.publish procs.(0) (quote_of reg "StockQuote" ~amount:i ())
  done;
  Engine.run engine;
  Alcotest.(check int) "quotes handled on workers" 8
    (Subscription.delivered s_quote);
  Alcotest.(check int) "handed-off republishes delivered" 8
    (Subscription.delivered s_spot);
  Alcotest.(check int) "every handler body ran" 16 (Atomic.get handled);
  (match Domain.pool_stats domain with
  | None ->
      if domains > 1 then
        Alcotest.fail "pooled domain reports no pool stats"
  | Some st ->
      Alcotest.(check bool) "handlers went through the pool" true
        (st.Pool.tasks >= 16));
  Domain.shutdown domain

let suite =
  ( "shard",
    [ Alcotest.test_case "shard key: stable, in range, spreading" `Quick
        test_key_stable;
      Alcotest.test_case "engine tick barrier placement" `Quick
        test_tick_barrier;
      Alcotest.test_case "tick barrier may schedule follow-ups" `Quick
        test_tick_barrier_schedules_followup;
      Alcotest.test_case "pool executes every task" `Quick
        test_pool_executes_all;
      Alcotest.test_case "pool steals from a loaded shard" `Quick
        test_pool_steals_from_loaded_shard;
      Alcotest.test_case "pool counts pressure events" `Quick
        test_pool_pressure_threshold;
      Alcotest.test_case "per-shard stats merge on read" `Quick
        test_stats_merge_on_read;
      QCheck_alcotest.to_alcotest ~long:false sharded_equivalent;
      Alcotest.test_case "two domains: parallel dispatch + hand-off" `Quick
        test_multi_domain_end_to_end ] )
