let () =
  Alcotest.run "tpbs"
    [ Test_serial.suite; Test_typesys.suite; Test_obvent.suite;
      Test_filter.suite; Test_sim.suite; Test_trace.suite; Test_group.suite;
      Test_stack.suite; Test_rmi.suite;
      Test_core.suite; Test_routing.suite; Test_baselines.suite;
      Test_psc.suite; Test_analysis.suite; Test_store.suite;
      Test_transport.suite; Test_shard.suite; Test_alternatives.suite;
      Test_cover.suite ]
