module Engine = Tpbs_sim.Engine
module Net = Tpbs_sim.Net
module Value = Tpbs_serial.Value
module Rmi = Tpbs_rmi.Rmi
module Nameserver = Tpbs_rmi.Nameserver
module Trace = Tpbs_trace.Trace

let setup ?dgc ?call_timeout ?(n = 3) () =
  let engine = Engine.create ~seed:42 () in
  let net = Net.create engine in
  let nodes = Array.init n (fun _ -> Net.add_node net) in
  let runtimes =
    Array.map (fun me -> Rmi.attach ?dgc ?call_timeout net ~me) nodes
  in
  engine, net, nodes, runtimes

let echo_handler ~meth ~args : Value.t =
  match meth, args with
  | "echo", [ v ] -> v
  | "add", [ Value.Int a; Value.Int b ] -> Value.Int (a + b)
  | "boom", _ -> raise (Rmi.App_error "kaboom")
  | _ -> raise (Rmi.App_error ("no such method " ^ meth))

let test_invoke_roundtrip () =
  let engine, _net, _nodes, rts = setup () in
  let obj = Rmi.export rts.(0) ~iface:"Echo" echo_handler in
  let result = ref None in
  Rmi.invoke rts.(1) obj ~meth:"add" ~args:[ Value.Int 2; Value.Int 40 ]
    ~k:(fun r -> result := Some r);
  Engine.run engine;
  match !result with
  | Some (Ok (Value.Int 42)) -> ()
  | other ->
      Alcotest.failf "unexpected result %a"
        Fmt.(
          Dump.option (fun ppf -> function
            | Ok v -> Fmt.pf ppf "Ok %a" Value.pp v
            | Error e -> Fmt.pf ppf "Error %a" Rmi.pp_error e))
        other

let test_remote_exception () =
  let engine, _net, _nodes, rts = setup () in
  let obj = Rmi.export rts.(0) ~iface:"Echo" echo_handler in
  let result = ref None in
  Rmi.invoke rts.(1) obj ~meth:"boom" ~args:[] ~k:(fun r -> result := Some r);
  Engine.run engine;
  match !result with
  | Some (Error (Rmi.Remote_exception "kaboom")) -> ()
  | _ -> Alcotest.fail "expected remote exception"

let test_unknown_object () =
  let engine, _net, _nodes, rts = setup () in
  let obj = Rmi.export rts.(0) ~iface:"Echo" echo_handler in
  Rmi.unexport rts.(0) obj;
  let result = ref None in
  Rmi.invoke rts.(1) obj ~meth:"echo" ~args:[ Value.Null ]
    ~k:(fun r -> result := Some r);
  Engine.run engine;
  match !result with
  | Some (Error Rmi.Unknown_object) -> ()
  | _ -> Alcotest.fail "expected unknown object"

let test_timeout_on_crashed_host () =
  let engine, net, nodes, rts = setup ~call_timeout:10_000 () in
  let obj = Rmi.export rts.(0) ~iface:"Echo" echo_handler in
  Net.crash net nodes.(0);
  let result = ref None in
  Rmi.invoke rts.(1) obj ~meth:"echo" ~args:[ Value.Int 1 ]
    ~k:(fun r -> result := Some r);
  Engine.run engine;
  match !result with
  | Some (Error Rmi.Timeout) -> ()
  | _ -> Alcotest.fail "expected timeout"

let test_invoke_non_remote () =
  let engine, _net, _nodes, rts = setup () in
  let result = ref None in
  Rmi.invoke rts.(0) (Value.Int 3) ~meth:"echo" ~args:[]
    ~k:(fun r -> result := Some r);
  Engine.run engine;
  match !result with
  | Some (Error Rmi.Bad_reply) -> ()
  | _ -> Alcotest.fail "expected bad reply for non-remote reference"

let test_nameserver () =
  let engine, _net, _nodes, rts = setup () in
  let ns = Nameserver.host rts.(0) in
  let registry = Nameserver.reference ns in
  let obj = Rmi.export rts.(1) ~iface:"StockMarket" echo_handler in
  let bound = ref false and looked = ref None and dup = ref None in
  Nameserver.bind rts.(1) ~registry ~name:"market" obj ~k:(fun r ->
      bound := r = Ok ();
      (* Duplicate bind must fail. *)
      Nameserver.bind rts.(1) ~registry ~name:"market" obj ~k:(fun r ->
          dup := Some r);
      Nameserver.lookup rts.(2) ~registry ~name:"market" ~k:(fun r ->
          looked := Some r));
  Engine.run engine;
  Alcotest.(check bool) "bound" true !bound;
  (match !dup with
  | Some (Error (Rmi.Remote_exception _)) -> ()
  | _ -> Alcotest.fail "duplicate bind accepted");
  (match !looked with
  | Some (Ok v) ->
      Alcotest.(check bool) "lookup returns the reference" true
        (Value.equal v obj)
  | _ -> Alcotest.fail "lookup failed");
  let missing = ref None in
  Nameserver.lookup rts.(2) ~registry ~name:"nope" ~k:(fun r ->
      missing := Some r);
  Engine.run engine;
  match !missing with
  | Some (Error (Rmi.Remote_exception _)) -> ()
  | _ -> Alcotest.fail "unknown name should fail"

let test_dgc_strict_counts () =
  let engine, _net, _nodes, rts = setup () in
  let obj = Rmi.export rts.(0) ~iface:"Echo" echo_handler in
  Alcotest.(check int) "initially collectable" 1 (Rmi.collectable rts.(0));
  Rmi.adopt_proxy rts.(1) obj;
  Rmi.adopt_proxy rts.(1) obj;
  (* idempotent *)
  Rmi.adopt_proxy rts.(2) obj;
  Engine.run engine;
  Alcotest.(check int) "pinned by two holders" 1 (Rmi.pinned rts.(0));
  Rmi.release_proxy rts.(1) obj;
  Engine.run engine;
  Alcotest.(check int) "still pinned by one" 1 (Rmi.pinned rts.(0));
  Rmi.release_proxy rts.(2) obj;
  Engine.run engine;
  Alcotest.(check int) "collectable after all released" 1
    (Rmi.collectable rts.(0));
  Alcotest.(check int) "nothing pinned" 0 (Rmi.pinned rts.(0))

let test_dgc_strict_crashed_holder_pins_forever () =
  (* The §5.4.2 caveat: a crashed subscriber's proxy is never
     released, so the remote object can never be collected. *)
  let engine, net, nodes, rts = setup () in
  let obj = Rmi.export rts.(0) ~iface:"StockMarket" echo_handler in
  Rmi.adopt_proxy rts.(1) obj;
  Engine.run engine;
  Net.crash net nodes.(1);
  (* An arbitrarily long time passes. *)
  Engine.schedule engine ~delay:10_000_000 (fun () -> ());
  Engine.run engine;
  Rmi.run_dgc rts.(0);
  Alcotest.(check int) "object pinned forever under strict DGC" 1
    (Rmi.pinned rts.(0))

let test_dgc_lease_reclaims_after_crash () =
  let engine, net, nodes, _ = setup () in
  (* Re-attach with lease mode. *)
  ignore nodes;
  let net2 = net in
  let rts =
    Array.map
      (fun me -> Rmi.attach ~dgc:(Rmi.Lease 20_000) net2 ~me)
      nodes
  in
  let obj = Rmi.export rts.(0) ~iface:"StockMarket" echo_handler in
  Rmi.adopt_proxy rts.(1) obj;
  Engine.run ~until:(Engine.now engine + 50_000) engine;
  Alcotest.(check int) "pinned while holder alive and renewing" 1
    (Rmi.pinned rts.(0));
  Net.crash net nodes.(1);
  Engine.run ~until:(Engine.now engine + 100_000) engine;
  Alcotest.(check int) "lease expired after holder crash" 1
    (Rmi.collectable rts.(0));
  (* Stop the DGC timers so the suite terminates. *)
  Net.crash net nodes.(0);
  Net.crash net nodes.(2);
  Engine.run engine

let test_lease_single_renew_loop_after_churn () =
  (* Regression: each adopt used to spawn a renew timer that release
     never cancelled, so release/re-adopt churn accumulated timers and
     multiplied renewal traffic (and a "released" proxy kept pinning
     its object remotely). The epoch check must leave exactly one live
     loop renewing at the normal rate. *)
  let tr = Trace.create () in
  Trace.set_ambient tr;
  let engine, net, nodes, rts = setup ~dgc:(Rmi.Lease 20_000) () in
  let obj = Rmi.export rts.(0) ~iface:"Echo" echo_handler in
  (* Five release/re-adopt cycles, ending adopted: six loops spawned,
     five of them stale. *)
  for i = 0 to 4 do
    Engine.schedule engine ~delay:(i * 3_000) (fun () ->
        Rmi.adopt_proxy rts.(1) obj);
    Engine.schedule engine
      ~delay:((i * 3_000) + 1_500)
      (fun () -> Rmi.release_proxy rts.(1) obj)
  done;
  Engine.schedule engine ~delay:15_000 (fun () -> Rmi.adopt_proxy rts.(1) obj);
  Engine.run ~until:100_000 engine;
  Alcotest.(check int) "stale renew loops died" 1 (Rmi.renew_loops rts.(1));
  (* Renewal traffic over [100k, 200k] with a 10k renew period: one
     surviving loop sends ~10, the leaky version ~60. *)
  let c = Trace.counter tr "rmi.renews" in
  let before = Trace.Counter.value c in
  Engine.run ~until:200_000 engine;
  let window = Trace.Counter.value c - before in
  Alcotest.(check bool)
    (Printf.sprintf "renew rate matches one loop (8 <= %d <= 14)" window)
    true
    (window >= 8 && window <= 14);
  Alcotest.(check int) "object still pinned by final adopt" 1
    (Rmi.pinned rts.(0));
  Trace.set_ambient (Trace.create ());
  (* Stop the DGC/renew timers so the suite terminates. *)
  Array.iter (fun node -> Net.crash net node) nodes;
  Engine.run engine

let suite =
  ( "rmi",
    [ Alcotest.test_case "invoke roundtrip" `Quick test_invoke_roundtrip;
      Alcotest.test_case "remote exception" `Quick test_remote_exception;
      Alcotest.test_case "unknown object" `Quick test_unknown_object;
      Alcotest.test_case "timeout on crashed host" `Quick
        test_timeout_on_crashed_host;
      Alcotest.test_case "invoke on non-remote value" `Quick
        test_invoke_non_remote;
      Alcotest.test_case "nameserver bind/lookup" `Quick test_nameserver;
      Alcotest.test_case "dgc strict: counts" `Quick test_dgc_strict_counts;
      Alcotest.test_case "dgc strict: crashed holder pins (§5.4.2)" `Quick
        test_dgc_strict_crashed_holder_pins_forever;
      Alcotest.test_case "dgc lease: reclaims after crash" `Quick
        test_dgc_lease_reclaims_after_crash;
      Alcotest.test_case "dgc lease: one renew loop after churn" `Quick
        test_lease_single_renew_loop_after_churn ] )
