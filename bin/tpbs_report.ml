(* Summarize (or validate with --check) a JSONL trace/metrics file
   produced by the tpbs_trace exporter. Reads stdin when no file (or
   "-") is given. --require NAME (repeatable) fails unless counter
   NAME was exported with a positive value — CI smoke steps use it to
   assert a scenario actually exercised a path. *)

let usage () =
  prerr_endline
    "usage: tpbs_report [--check] [--require COUNTER]... \
     [--require-le NAME:FIELD<=BOUND]... [--require-ge NAME:FIELD>=BOUND]... \
     [--require-eq NAME:FIELD==BOUND]... [FILE|-]";
  exit 2

(* "soak.latency_us:p99<=500000" → (name, field, bound); [op] is the
   comparison glyph separating field from bound ("<=" or ">="). *)
let parse_require ~op spec =
  match String.index_opt spec ':' with
  | None -> None
  | Some i -> (
      let name = String.sub spec 0 i in
      let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
      let split_on sub =
        let sl = String.length sub in
        let rec go j =
          if j + sl > String.length rest then None
          else if String.sub rest j sl = sub then
            Some
              ( String.sub rest 0 j,
                String.sub rest (j + sl) (String.length rest - j - sl) )
          else go (j + 1)
        in
        go 0
      in
      match split_on op with
      | None -> None
      | Some (field, bound) -> (
          match float_of_string_opt (String.trim bound) with
          | None -> None
          | Some b -> Some (name, String.trim field, b)))

let read_lines ic =
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  go []

let () =
  let check_mode = ref false in
  let required = ref [] in
  let required_le = ref [] in
  let required_ge = ref [] in
  let required_eq = ref [] in
  let file = ref None in
  let rec parse = function
    | [] -> ()
    | "--check" :: rest ->
        check_mode := true;
        parse rest
    | "--require" :: name :: rest ->
        required := name :: !required;
        parse rest
    | [ "--require" ] ->
        prerr_endline "tpbs_report: --require expects a counter name";
        exit 2
    | "--require-le" :: spec :: rest -> (
        match parse_require ~op:"<=" spec with
        | Some r ->
            required_le := r :: !required_le;
            parse rest
        | None ->
            Printf.eprintf
              "tpbs_report: bad --require-le spec %S (want NAME:FIELD<=BOUND)\n"
              spec;
            exit 2)
    | [ "--require-le" ] ->
        prerr_endline "tpbs_report: --require-le expects NAME:FIELD<=BOUND";
        exit 2
    | "--require-ge" :: spec :: rest -> (
        match parse_require ~op:">=" spec with
        | Some r ->
            required_ge := r :: !required_ge;
            parse rest
        | None ->
            Printf.eprintf
              "tpbs_report: bad --require-ge spec %S (want NAME:FIELD>=BOUND)\n"
              spec;
            exit 2)
    | [ "--require-ge" ] ->
        prerr_endline "tpbs_report: --require-ge expects NAME:FIELD>=BOUND";
        exit 2
    | "--require-eq" :: spec :: rest -> (
        match parse_require ~op:"==" spec with
        | Some r ->
            required_eq := r :: !required_eq;
            parse rest
        | None ->
            Printf.eprintf
              "tpbs_report: bad --require-eq spec %S (want NAME:FIELD==BOUND)\n"
              spec;
            exit 2)
    | [ "--require-eq" ] ->
        prerr_endline "tpbs_report: --require-eq expects NAME:FIELD==BOUND";
        exit 2
    | "-" :: rest ->
        file := None;
        parse rest
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' -> usage ()
    | arg :: rest ->
        file := Some arg;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let lines =
    match !file with
    | None -> read_lines stdin
    | Some path ->
        if not (Sys.file_exists path) then begin
          Printf.eprintf "tpbs_report: no such file: %s\n" path;
          exit 2
        end;
        let ic = open_in path in
        let lines = read_lines ic in
        close_in ic;
        lines
  in
  match Tpbs_trace.Report.check lines with
  | Error (lineno, msg) ->
      Printf.eprintf "tpbs_report: line %d: %s\n" lineno msg;
      exit 1
  | Ok n ->
      let failed =
        List.filter
          (fun name ->
            match Tpbs_trace.Report.counter_value lines name with
            | Some v when v > 0 -> false
            | _ -> true)
          (List.rev !required)
      in
      List.iter
        (fun name ->
          Printf.eprintf "tpbs_report: required counter %s %s\n" name
            (match Tpbs_trace.Report.counter_value lines name with
            | None -> "was never exported"
            | Some v -> Printf.sprintf "is %d, want > 0" v))
        failed;
      if failed <> [] then exit 1;
      let failed_le =
        List.filter
          (fun (name, field, bound) ->
            match Tpbs_trace.Report.metric_value lines name field with
            | Some v when v <= bound -> false
            | _ -> true)
          (List.rev !required_le)
      in
      List.iter
        (fun (name, field, bound) ->
          Printf.eprintf "tpbs_report: SLO %s:%s %s (bound %g)\n" name field
            (match Tpbs_trace.Report.metric_value lines name field with
            | None -> "was never exported"
            | Some v -> Printf.sprintf "is %g, want <= %g" v bound)
            bound)
        failed_le;
      if failed_le <> [] then exit 1;
      let failed_ge =
        List.filter
          (fun (name, field, bound) ->
            match Tpbs_trace.Report.metric_value lines name field with
            | Some v when v >= bound -> false
            | _ -> true)
          (List.rev !required_ge)
      in
      List.iter
        (fun (name, field, bound) ->
          Printf.eprintf "tpbs_report: floor %s:%s %s (bound %g)\n" name field
            (match Tpbs_trace.Report.metric_value lines name field with
            | None -> "was never exported"
            | Some v -> Printf.sprintf "is %g, want >= %g" v bound)
            bound)
        failed_ge;
      if failed_ge <> [] then exit 1;
      let failed_eq =
        List.filter
          (fun (name, field, bound) ->
            match Tpbs_trace.Report.metric_value lines name field with
            | Some v when v = bound -> false
            | _ -> true)
          (List.rev !required_eq)
      in
      List.iter
        (fun (name, field, bound) ->
          Printf.eprintf "tpbs_report: exact %s:%s %s (bound %g)\n" name field
            (match Tpbs_trace.Report.metric_value lines name field with
            | None -> "was never exported"
            | Some v -> Printf.sprintf "is %g, want == %g" v bound)
            bound)
        failed_eq;
      if failed_eq <> [] then exit 1;
      if !check_mode then Printf.printf "ok: %d valid lines\n" n
      else if
        !required = [] && !required_le = [] && !required_ge = []
        && !required_eq = []
      then print_string (Tpbs_trace.Report.summarize lines)
      else
        Printf.printf "ok: %d requirements satisfied\n"
          (List.length !required + List.length !required_le
         + List.length !required_ge + List.length !required_eq)
