(* Summarize (or validate with --check) a JSONL trace/metrics file
   produced by the tpbs_trace exporter. Reads stdin when no file (or
   "-") is given. *)

let usage () =
  prerr_endline "usage: tpbs_report [--check] [FILE|-]";
  exit 2

let read_lines ic =
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  go []

let () =
  let check_mode = ref false in
  let file = ref None in
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--check" -> check_mode := true
        | "-" -> file := None
        | _ when String.length arg > 0 && arg.[0] = '-' -> usage ()
        | _ -> file := Some arg)
    Sys.argv;
  let lines =
    match !file with
    | None -> read_lines stdin
    | Some path ->
        if not (Sys.file_exists path) then begin
          Printf.eprintf "tpbs_report: no such file: %s\n" path;
          exit 2
        end;
        let ic = open_in path in
        let lines = read_lines ic in
        close_in ic;
        lines
  in
  match Tpbs_trace.Report.check lines with
  | Error (lineno, msg) ->
      Printf.eprintf "tpbs_report: line %d: %s\n" lineno msg;
      exit 1
  | Ok n ->
      if !check_mode then Printf.printf "ok: %d valid lines\n" n
      else print_string (Tpbs_trace.Report.summarize lines)
