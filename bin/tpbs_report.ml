(* Summarize (or validate with --check) a JSONL trace/metrics file
   produced by the tpbs_trace exporter. Reads stdin when no file (or
   "-") is given. --require NAME (repeatable) fails unless counter
   NAME was exported with a positive value — CI smoke steps use it to
   assert a scenario actually exercised a path. *)

let usage () =
  prerr_endline "usage: tpbs_report [--check] [--require COUNTER]... [FILE|-]";
  exit 2

let read_lines ic =
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  go []

let () =
  let check_mode = ref false in
  let required = ref [] in
  let file = ref None in
  let rec parse = function
    | [] -> ()
    | "--check" :: rest ->
        check_mode := true;
        parse rest
    | "--require" :: name :: rest ->
        required := name :: !required;
        parse rest
    | [ "--require" ] ->
        prerr_endline "tpbs_report: --require expects a counter name";
        exit 2
    | "-" :: rest ->
        file := None;
        parse rest
    | arg :: _ when String.length arg > 0 && arg.[0] = '-' -> usage ()
    | arg :: rest ->
        file := Some arg;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let lines =
    match !file with
    | None -> read_lines stdin
    | Some path ->
        if not (Sys.file_exists path) then begin
          Printf.eprintf "tpbs_report: no such file: %s\n" path;
          exit 2
        end;
        let ic = open_in path in
        let lines = read_lines ic in
        close_in ic;
        lines
  in
  match Tpbs_trace.Report.check lines with
  | Error (lineno, msg) ->
      Printf.eprintf "tpbs_report: line %d: %s\n" lineno msg;
      exit 1
  | Ok n ->
      let failed =
        List.filter
          (fun name ->
            match Tpbs_trace.Report.counter_value lines name with
            | Some v when v > 0 -> false
            | _ -> true)
          (List.rev !required)
      in
      List.iter
        (fun name ->
          Printf.eprintf "tpbs_report: required counter %s %s\n" name
            (match Tpbs_trace.Report.counter_value lines name with
            | None -> "was never exported"
            | Some v -> Printf.sprintf "is %d, want > 0" v))
        failed;
      if failed <> [] then exit 1;
      if !check_mode then Printf.printf "ok: %d valid lines\n" n
      else if !required = [] then
        print_string (Tpbs_trace.Report.summarize lines)
      else
        Printf.printf "ok: %d required counters present\n"
          (List.length !required)
