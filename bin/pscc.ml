(* pscc — the precompiler/driver for Java_ps programs, the counterpart
   of the paper's psc (§4.1): check a program, show the adapter plan
   the precompiler would generate, or run the program on the simulated
   DACE deployment. *)

module Compile = Tpbs_psc.Compile
module Interp = Tpbs_psc.Interp
module Pparser = Tpbs_psc.Pparser
module Lint = Tpbs_analysis.Lint
module Deploy = Tpbs_analysis.Deploy

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* [Error msgs] carries every collected compile error (not just the
   first); parse/lex failures are necessarily singular. Exit code 2 is
   reserved for these hard errors, 1 for --werror'd lint warnings. *)
let load path =
  match Pparser.program_of_string (read_file path) with
  | program -> (
      match Compile.compile_result program with
      | Ok compiled -> Ok compiled
      | Error msgs ->
          Error (List.map (fun m -> "compile error: " ^ m) msgs))
  | exception Pparser.Parse_error (pos, msg) ->
      Error
        [ Fmt.str "parse error at %a: %s" Tpbs_filter.Lexer.pp_pos pos msg ]
  | exception Tpbs_filter.Lexer.Lex_error (pos, msg) ->
      Error [ Fmt.str "lex error at %a: %s" Tpbs_filter.Lexer.pp_pos pos msg ]
  | exception Sys_error msg -> Error [ msg ]

let report_errors msgs =
  List.iter (fun m -> Fmt.epr "%s@." m) msgs;
  2

open Cmdliner

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"PROGRAM.javaps")

let check_cmd =
  let run file =
    match load file with
    | Ok compiled ->
        Fmt.pr "%s: %d types, %d subscriptions, %d publish statements — OK@."
          file
          (List.length compiled.Compile.adapters)
          (List.length compiled.Compile.sub_plans)
          (List.length compiled.Compile.publish_types);
        0
    | Error msgs -> report_errors msgs
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Typecheck a Java_ps program (LP1). All compile errors are \
          reported in one run; exits 2 when any is found.")
    Term.(const run $ file_arg)

let format_arg =
  Arg.(
    value
    & opt (enum [ "pretty", `Pretty; "json", `Json ]) `Pretty
    & info [ "format" ]
        ~doc:"Report format: $(b,pretty) (default) or $(b,json).")

let werror_arg =
  Arg.(
    value & flag
    & info [ "werror" ]
        ~doc:"Treat warnings as errors: exit 1 when any finding is reported.")

let deployment_arg =
  Arg.(
    value & flag
    & info [ "deployment" ]
        ~doc:
          "Treat $(i,PROGRAM) as a deployment manifest (JSON mapping \
           Java_ps units to broker groups) and run the deployment-wide \
           passes TP009–TP013 on top of the per-unit ones.")

let witness_arg =
  Arg.(
    value & flag
    & info [ "witness" ]
        ~doc:
          "Include counterexample obvents (e.g. the TP011 coverage-gap \
           witness) in the report.")

let lint_cmd =
  let run file format werror deployment witness =
    let report diags =
      let diags = if witness then diags else Lint.strip_witnesses diags in
      (match format with
      | `Json -> print_string (Lint.to_json diags)
      | `Pretty ->
          if diags = [] then Fmt.pr "%s: clean — no lint findings@." file
          else Fmt.pr "%a" Lint.pp_report diags);
      Lint.exit_code ~werror diags
    in
    if deployment then
      match Deploy.load file with
      | Error msgs -> report_errors msgs
      | Ok d -> report (Lint.analyze_deployment d)
    else
      match load file with
      | Error msgs -> report_errors msgs
      | Ok compiled -> report (Lint.analyze compiled)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyze a Java_ps program: unsatisfiable/tautological \
          filters (abstract interpretation over the filter language), \
          possible division by zero, dead publishes and dead subscriptions \
          (connectivity over the subtype lattice), mobility/factoring \
          degradation (§4.4.3), compile-time QoS conflicts (Fig. 4), and — \
          with $(b,--deployment) — cross-unit covering analysis: redundant \
          subscriptions, deployment-dead endpoints, coverage gaps with \
          machine-checked counterexample obvents, cross-unit QoS drift, and \
          broker-suppressed Subs. Diagnostic codes TP001–TP014 are stable; \
          see DESIGN.md §9 and §14.")
    Term.(
      const run $ file_arg $ format_arg $ werror_arg $ deployment_arg
      $ witness_arg)

let plan_cmd =
  let run file =
    match load file with
    | Ok compiled ->
        Fmt.pr "%a@." Compile.pp_plan compiled;
        0
    | Error msgs -> report_errors msgs
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:
         "Show the precompilation plan: generated adapters and the \
          RemoteFilter/LocalFilter classification of every subscription \
          (§4.4).")
    Term.(const run $ file_arg)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.")

let horizon_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "horizon" ] ~doc:"Stop the simulation at this virtual time.")

let broker_arg =
  Arg.(
    value & flag
    & info [ "broker" ]
        ~doc:"Route unreliable traffic through a dedicated filtering host.")

let run_cmd =
  let run file seed horizon broker =
    match load file with
    | Ok compiled ->
        let result = Interp.run ~seed ?horizon ~broker compiled in
        Fmt.pr "%a" Interp.pp_trace result.Interp.trace;
        let s = result.Interp.stats in
        Fmt.pr
          "-- %d published, %d delivered, %d filtered out, %d expired@."
          s.Tpbs_core.Pubsub.Domain.published
          s.Tpbs_core.Pubsub.Domain.deliveries
          s.Tpbs_core.Pubsub.Domain.filtered_out
          s.Tpbs_core.Pubsub.Domain.expired;
        0
    | Error msgs -> report_errors msgs
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run a Java_ps program on the simulated deployment.")
    Term.(const run $ file_arg $ seed_arg $ horizon_arg $ broker_arg)

let edl_cmd =
  let run file =
    match load file with
    | Ok compiled ->
        Fmt.pr "%s" (Tpbs_psc.Edl.export compiled.Compile.registry);
        0
    | Error msgs -> report_errors msgs
  in
  Cmd.v
    (Cmd.info "edl"
       ~doc:
         "Export the program's obvent types as an EDL schema (§5.6) — a           Java_ps declaration file another deployment can import.")
    Term.(const run $ file_arg)

let () =
  let doc = "precompiler and runner for Java_ps publish/subscribe programs" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "pscc" ~version:"1.0.0" ~doc)
          [ check_cmd; lint_cmd; plan_cmd; run_cmd; edl_cmd ]))
