(* pscc — the precompiler/driver for Java_ps programs, the counterpart
   of the paper's psc (§4.1): check a program, show the adapter plan
   the precompiler would generate, or run the program on the simulated
   DACE deployment. *)

module Compile = Tpbs_psc.Compile
module Interp = Tpbs_psc.Interp
module Pparser = Tpbs_psc.Pparser

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load path =
  match Compile.compile_string (read_file path) with
  | compiled -> Ok compiled
  | exception Compile.Compile_error msg -> Error ("compile error: " ^ msg)
  | exception Pparser.Parse_error (pos, msg) ->
      Error
        (Fmt.str "parse error at %a: %s" Tpbs_filter.Lexer.pp_pos pos msg)
  | exception Tpbs_filter.Lexer.Lex_error (pos, msg) ->
      Error (Fmt.str "lex error at %a: %s" Tpbs_filter.Lexer.pp_pos pos msg)
  | exception Sys_error msg -> Error msg

open Cmdliner

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"PROGRAM.javaps")

let check_cmd =
  let run file =
    match load file with
    | Ok compiled ->
        Fmt.pr "%s: %d types, %d subscriptions, %d publish statements — OK@."
          file
          (List.length compiled.Compile.adapters)
          (List.length compiled.Compile.sub_plans)
          (List.length compiled.Compile.publish_types);
        0
    | Error msg ->
        Fmt.epr "%s@." msg;
        1
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Typecheck a Java_ps program (LP1).")
    Term.(const run $ file_arg)

let plan_cmd =
  let run file =
    match load file with
    | Ok compiled ->
        Fmt.pr "%a@." Compile.pp_plan compiled;
        0
    | Error msg ->
        Fmt.epr "%s@." msg;
        1
  in
  Cmd.v
    (Cmd.info "plan"
       ~doc:
         "Show the precompilation plan: generated adapters and the \
          RemoteFilter/LocalFilter classification of every subscription \
          (§4.4).")
    Term.(const run $ file_arg)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Simulation seed.")

let horizon_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "horizon" ] ~doc:"Stop the simulation at this virtual time.")

let broker_arg =
  Arg.(
    value & flag
    & info [ "broker" ]
        ~doc:"Route unreliable traffic through a dedicated filtering host.")

let run_cmd =
  let run file seed horizon broker =
    match load file with
    | Ok compiled ->
        let result = Interp.run ~seed ?horizon ~broker compiled in
        Fmt.pr "%a" Interp.pp_trace result.Interp.trace;
        let s = result.Interp.stats in
        Fmt.pr
          "-- %d published, %d delivered, %d filtered out, %d expired@."
          s.Tpbs_core.Pubsub.Domain.published
          s.Tpbs_core.Pubsub.Domain.deliveries
          s.Tpbs_core.Pubsub.Domain.filtered_out
          s.Tpbs_core.Pubsub.Domain.expired;
        0
    | Error msg ->
        Fmt.epr "%s@." msg;
        1
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Run a Java_ps program on the simulated deployment.")
    Term.(const run $ file_arg $ seed_arg $ horizon_arg $ broker_arg)

let edl_cmd =
  let run file =
    match load file with
    | Ok compiled ->
        Fmt.pr "%s" (Tpbs_psc.Edl.export compiled.Compile.registry);
        0
    | Error msg ->
        Fmt.epr "%s@." msg;
        1
  in
  Cmd.v
    (Cmd.info "edl"
       ~doc:
         "Export the program's obvent types as an EDL schema (§5.6) — a           Java_ps declaration file another deployment can import.")
    Term.(const run $ file_arg)

let () =
  let doc = "precompiler and runner for Java_ps publish/subscribe programs" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "pscc" ~version:"1.0.0" ~doc)
          [ check_cmd; plan_cmd; run_cmd; edl_cmd ]))
