(* tpbsd — the type-based publish/subscribe broker daemon.

   A thin CLI shell over Tpbs_transport.Broker: bind, serve until
   SIGINT/SIGTERM, then export the metrics registry (counters, queue
   gauges with peaks) as JSONL to --metrics or $TPBS_TRACE_FILE for
   tpbs_report. *)

let usage () =
  prerr_endline
    "usage: tpbsd [--host ADDR] [--port PORT] [--window N] [--metrics FILE]";
  exit 2

let () =
  let host = ref "127.0.0.1" in
  let port = ref 7411 in
  let window = ref Tpbs_transport.Broker.default_config.pub_window in
  let metrics = ref (Sys.getenv_opt "TPBS_TRACE_FILE") in
  let rec parse = function
    | [] -> ()
    | "--host" :: v :: rest ->
        host := v;
        parse rest
    | "--port" :: v :: rest -> (
        match int_of_string_opt v with
        | Some p -> port := p; parse rest
        | None -> usage ())
    | "--window" :: v :: rest -> (
        match int_of_string_opt v with
        | Some w when w > 0 -> window := w; parse rest
        | _ -> usage ())
    | "--metrics" :: v :: rest ->
        metrics := Some v;
        parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let stop = ref false in
  let handler = Sys.Signal_handle (fun _ -> stop := true) in
  Sys.set_signal Sys.sigint handler;
  Sys.set_signal Sys.sigterm handler;
  (* a dying client must not kill the daemon with SIGPIPE *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let config =
    { Tpbs_transport.Broker.default_config with pub_window = !window }
  in
  let b =
    try
      Tpbs_transport.Broker.create ~config ~host:!host ~port:!port ()
    with Unix.Unix_error (e, _, _) ->
      Printf.eprintf "tpbsd: cannot listen on %s:%d: %s\n" !host !port
        (Unix.error_message e);
      exit 1
  in
  Printf.printf "tpbsd: listening on %s:%d\n%!" !host
    (Tpbs_transport.Broker.port b);
  while not !stop do
    ignore (Tpbs_transport.Broker.poll b ~timeout_ms:200 ())
  done;
  Tpbs_transport.Broker.stop b;
  (match !metrics with
  | None -> ()
  | Some path ->
      let buf = Buffer.create 4096 in
      Tpbs_trace.Trace.metrics_to_jsonl (Tpbs_trace.Trace.ambient ()) buf;
      let oc = open_out path in
      Buffer.output_buffer oc buf;
      close_out oc;
      Printf.printf "tpbsd: metrics written to %s\n%!" path);
  prerr_endline "tpbsd: bye"
